#include "qtensor/program.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "qtensor/shape.hpp"
#include "qtensor/slicing.hpp"

namespace qarch::qtensor {

namespace {

/// A cached order is applicable iff it repeats nothing and covers every
/// variable of the network. The structure-hash guard should guarantee this;
/// validating anyway turns hash collisions and corrupt cache entries into a
/// silent replan instead of a failed compile.
bool order_applicable(const TensorNetwork& net,
                      const std::vector<VarId>& order) {
  std::set<VarId> seen(order.begin(), order.end());
  if (seen.size() != order.size()) return false;
  for (VarId v : net.variables())
    if (seen.count(v) == 0) return false;
  return true;
}

}  // namespace

struct ContractionProgram::Scratch {
  bool ready = false;
  std::vector<Tensor> slots;     ///< inputs_ copies + step intermediates
  std::vector<Tensor> full;      ///< unprojected slice-carrying inputs,
                                 ///< parallel to sliced_inputs_
  std::vector<const Tensor*> factors;  ///< reusable factor-pointer list
};

/// RAII pool lease: scratch workspaces persist across replays (buffer reuse
/// is the point of compiling) and across threads (the pool grows to the
/// peak replay concurrency, then stabilizes).
struct ContractionProgram::ScratchLease {
  const ContractionProgram* program;
  std::unique_ptr<Scratch> scratch;

  ScratchLease(const ContractionProgram* p, std::unique_ptr<Scratch> s)
      : program(p), scratch(std::move(s)) {}
  ScratchLease(ScratchLease&&) = default;
  ScratchLease(const ScratchLease&) = delete;
  ~ScratchLease() {
    if (scratch == nullptr) return;
    LockGuard lock(program->pool_mutex_);
    program->pool_.push_back(std::move(scratch));
  }
};

ContractionProgram::ContractionProgram(const circuit::Circuit& circuit,
                                       std::size_t u, std::size_t v,
                                       const ProgramOptions& options)
    : options_(options), num_params_(circuit.num_params()) {
  compile(circuit, {u, v});
}

ContractionProgram::ContractionProgram(const circuit::Circuit& circuit,
                                       std::size_t q,
                                       const ProgramOptions& options)
    : options_(options), num_params_(circuit.num_params()) {
  compile(circuit, {q});
}

ContractionProgram::~ContractionProgram() = default;

void ContractionProgram::compile(const circuit::Circuit& circuit,
                                 const std::vector<std::size_t>& targets) {
  // The ONE network build of this program's lifetime. Any probe theta
  // produces the same structure; zeros keep the baked data deterministic.
  const std::vector<double> probe(num_params_, 0.0);
  TensorNetwork net =
      targets.size() == 2
          ? expectation_zz_network(circuit, probe, targets[0], targets[1],
                                   options_.network, &bindings_)
          : expectation_z_network(circuit, probe, targets[0],
                                  options_.network, &bindings_);

  // Contraction order: a plan-cache hit (keyed by canonical lightcone shape
  // + exact structure hash) replays a previously chosen order with zero
  // planner work; otherwise the planner competes the ordering heuristics
  // under the exact bucket-elimination cost model, keeps the cheapest, and
  // records it for every later program of the same shape.
  ContractionPlan plan;
  bool plan_cached = false;
  std::uint64_t structure = 0;
  std::string shape_key = options_.shape_key;
  if (options_.plan_cache != nullptr) {
    if (shape_key.empty())
      shape_key = targets.size() == 2
                      ? lightcone_shape(circuit, targets[0], targets[1]).key
                      : "z:" + std::to_string(targets[0]);
    structure = network_structure_hash(net);
    if (auto hit = options_.plan_cache->find(shape_key, structure);
        hit.has_value() && order_applicable(net, hit->order)) {
      plan.order = std::move(hit->order);
      plan.cost = CostModel(net).cost(plan.order);
      plan.heuristic = hit->heuristic + "+cached";
      plan_cached = true;
    }
  }
  if (!plan_cached) {
    plan = plan_contraction(net, options_.planner);
    if (options_.plan_cache != nullptr)
      options_.plan_cache->insert(
          {shape_key, structure, plan.order, plan.heuristic});
  }
  stats_.plan_cached = plan_cached;
  stats_.shape_key = shape_key;

  // Slicing decision (step-dependent parallelization): if the planned width
  // blows the budget, fix greedy max-degree variables one at a time and
  // re-plan the projected structure until it fits. The projected copy is
  // only materialized when slicing actually triggers; the common path
  // schedules against `net` directly.
  TensorNetwork projected;
  const TensorNetwork* scheduled = &net;
  if (options_.slice_above_width > 0 &&
      plan.cost.width > options_.slice_above_width) {
    for (std::size_t s = 1; s <= options_.max_slice_vars; ++s) {
      slice_vars_ = choose_slice_vars(net, s);
      // Projection is structural: every assignment removes the same labels,
      // so assignment 0 stands in for all 2^s of them.
      projected = project_network(net, slice_vars_, 0);
      scheduled = &projected;
      plan = plan_contraction(projected, options_.planner);
      if (plan.cost.width <= options_.slice_above_width) break;
    }
  }

  for (std::size_t i = 0; i < net.tensors.size(); ++i) {
    const auto& labels = net.tensors[i].labels();
    const bool carries = std::any_of(
        slice_vars_.begin(), slice_vars_.end(), [&](VarId sv) {
          return std::find(labels.begin(), labels.end(), sv) != labels.end();
        });
    if (carries) sliced_inputs_.push_back(i);
  }

  // Flatten bucket elimination over the scheduled structure into a static
  // step list. Mirrors contract(): per eliminated variable, the bucket is
  // every live slot carrying it; the product spans the union label set with
  // the variable first, so the post-product sum is a halves fold.
  struct Live {
    std::size_t slot;
    std::vector<VarId> labels;
  };
  std::vector<Live> live;
  live.reserve(scheduled->tensors.size());
  QARCH_CHECK(scheduled->tensors.size() == net.tensors.size(),
              "projection changed the tensor count");
  for (std::size_t i = 0; i < scheduled->tensors.size(); ++i)
    live.push_back({i, scheduled->tensors[i].labels()});
  num_slots_ = net.tensors.size();

  {
    // The planner's order must cover exactly the scheduled structure.
    std::set<VarId> in_order(plan.order.begin(), plan.order.end());
    QARCH_CHECK(in_order.size() == plan.order.size(),
                "compiled order repeats a variable");
    for (VarId var : scheduled->variables())
      QARCH_CHECK(in_order.count(var) > 0,
                  "compiled order misses a network variable");
  }

  for (VarId var : plan.order) {
    std::vector<Live> rest;
    rest.reserve(live.size());
    Step step;
    std::set<VarId> union_set;
    for (Live& l : live) {
      if (std::find(l.labels.begin(), l.labels.end(), var) != l.labels.end()) {
        step.factors.push_back(l.slot);
        union_set.insert(l.labels.begin(), l.labels.end());
      } else {
        rest.push_back(std::move(l));
      }
    }
    if (step.factors.empty()) {
      live = std::move(rest);
      continue;
    }
    step.out_labels.reserve(union_set.size());
    step.out_labels.push_back(var);
    for (VarId w : union_set)
      if (w != var) step.out_labels.push_back(w);
    step.entries = std::size_t{1} << step.out_labels.size();
    step.out_slot = num_slots_++;
    stats_.width = std::max(stats_.width, step.out_labels.size());

    Live produced;
    produced.slot = step.out_slot;
    produced.labels.assign(step.out_labels.begin() + 1,
                           step.out_labels.end());
    rest.push_back(std::move(produced));
    steps_.push_back(std::move(step));
    live = std::move(rest);
  }

  for (const Live& l : live) {
    QARCH_CHECK(l.labels.empty(),
                "compiled schedule left a non-scalar tensor");
    final_slots_.push_back(l.slot);
  }

  // Inputs keep the UNPROJECTED tensors: rebinding happens against the full
  // gate tensors, projection (if any) happens per replay assignment.
  inputs_ = std::move(net.tensors);

  stats_.tensors = inputs_.size();
  stats_.bound_tensors = bindings_.size();
  stats_.steps = steps_.size();
  stats_.est_flops = plan.cost.flops;
  stats_.slice_vars = slice_vars_.size();
  stats_.heuristic = plan.heuristic;
  // Intermediate slot entries only: the fused product_sum_into kernel never
  // materializes a full bucket product.
  stats_.scratch_entries = 0;
  for (const Step& s : steps_) stats_.scratch_entries += s.entries / 2;
}

void ContractionProgram::init_scratch(Scratch& s) const {
  s.slots.clear();
  s.slots.reserve(num_slots_);
  s.full.clear();
  for (std::size_t i = 0; i < inputs_.size(); ++i) s.slots.push_back(inputs_[i]);
  for (std::size_t i : sliced_inputs_) {
    s.full.push_back(inputs_[i]);
    // Shape the slot to the projected layout (values filled per assignment).
    Tensor projected = inputs_[i];
    for (VarId sv : slice_vars_)
      projected = project(projected, sv, 0);
    s.slots[i] = std::move(projected);
  }
  for (const Step& st : steps_) {
    std::vector<VarId> labels(st.out_labels.begin() + 1, st.out_labels.end());
    s.slots.emplace_back(std::move(labels),
                         std::vector<cplx>(st.entries / 2));
  }
  s.ready = true;
}

void ContractionProgram::rebind(Scratch& s,
                                std::span<const double> theta) const {
  for (const GateBinding& b : bindings_) {
    // Slice-carrying tensors are rebound in their FULL form; the projection
    // into the slot happens per assignment inside contract().
    const auto it = std::find(sliced_inputs_.begin(), sliced_inputs_.end(),
                              b.tensor_index);
    Tensor& target = it == sliced_inputs_.end()
                         ? s.slots[b.tensor_index]
                         : s.full[static_cast<std::size_t>(
                               it - sliced_inputs_.begin())];
    gate_tensor_data(b.gate, theta, b.diagonal, target.data());
  }
}

cplx ContractionProgram::run_schedule(Scratch& s,
                                      const Backend& backend) const {
  for (const Step& st : steps_) {
    s.factors.clear();
    for (std::size_t f : st.factors) s.factors.push_back(&s.slots[f]);
    // Fused bucket step: the product over out_labels summed over the
    // eliminated (first) variable, written straight into the output slot —
    // the full product tensor is never materialized.
    backend.product_sum_into(s.factors, st.out_labels,
                             s.slots[st.out_slot].data().data());
  }
  cplx value{1.0, 0.0};
  for (std::size_t slot : final_slots_) value *= s.slots[slot].scalar_value();
  return value;
}

ContractionProgram::ScratchLease ContractionProgram::lease() const {
  {
    LockGuard lock(pool_mutex_);
    if (!pool_.empty()) {
      std::unique_ptr<Scratch> s = std::move(pool_.back());
      pool_.pop_back();
      return {this, std::move(s)};
    }
  }
  return {this, std::make_unique<Scratch>()};
}

cplx ContractionProgram::contract(std::span<const double> theta,
                                  const Backend& backend) const {
  QARCH_REQUIRE(theta.size() >= num_params_,
                "parameter vector too short for compiled program");
  ScratchLease l = lease();
  Scratch& s = *l.scratch;
  if (!s.ready) init_scratch(s);
  rebind(s, theta);
  if (slice_vars_.empty()) return run_schedule(s, backend);

  cplx total{0.0, 0.0};
  const std::size_t num_slices = std::size_t{1} << slice_vars_.size();
  for (std::size_t assignment = 0; assignment < num_slices; ++assignment) {
    for (std::size_t j = 0; j < sliced_inputs_.size(); ++j) {
      Tensor projected = s.full[j];
      for (std::size_t k = 0; k < slice_vars_.size(); ++k)
        projected = project(projected, slice_vars_[k],
                            static_cast<int>((assignment >> k) & 1));
      s.slots[sliced_inputs_[j]].data() = std::move(projected.data());
    }
    total += run_schedule(s, backend);
  }
  return total;
}

double ContractionProgram::expectation_zz(std::span<const double> theta,
                                          const Backend& backend) const {
  const cplx value = contract(theta, backend);
  QARCH_CHECK(std::abs(value.imag()) < 1e-8,
              "Hermitian expectation has a large imaginary part");
  return value.real();
}

}  // namespace qarch::qtensor
