#include "qtensor/shape.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "qtensor/network.hpp"

namespace qarch::qtensor {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
  return h;
}

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

/// For symmetric two-qubit gates the two wires are interchangeable; giving
/// both the same role lets the isomorphism search swap them.
bool symmetric_two_qubit(circuit::GateKind kind) {
  using circuit::GateKind;
  return kind == GateKind::CZ || kind == GateKind::SWAP ||
         kind == GateKind::RZZ;
}

std::uint64_t param_sig(const circuit::ParamExpr& p) {
  std::uint64_t h = kFnvBasis;
  h = fnv_mix(h, static_cast<std::uint64_t>(p.kind));
  h = fnv_mix(h, std::bit_cast<std::uint64_t>(p.constant));
  h = fnv_mix(h, p.index);
  h = fnv_mix(h, std::bit_cast<std::uint64_t>(p.scale));
  return h;
}

/// One gate occurrence on one wire of the cone.
///
/// `tier` is the event's position in the wire's DEPENDENCY order, not its
/// raw chronological position: consecutive DIAGONAL events on a wire (no
/// non-diagonal event on that wire in between) all commute — with each other
/// and with every gate touching neither of their wires — so they share one
/// tier and are unordered within it. Every non-diagonal event gets a tier of
/// its own. Two circuits whose wires carry the same tier structure are
/// linear extensions of isomorphic gate-dependency posets, and adjacent
/// incomparable gates always commute (same-tier diagonals are both diagonal;
/// cross-wire incomparables share no qubit), so their unitaries are EQUAL.
/// This is what lets the cost layer's RZZ gates — emitted in arbitrary
/// edge-list order — deduplicate across symmetric edges.
struct Event {
  std::uint64_t sig = 0;            ///< kind + param expr + wire role
  std::size_t tier = 0;             ///< dependency tier on THIS wire
  std::size_t partner = kNone;      ///< dense index of the other wire's qubit
  std::size_t partner_tier = kNone; ///< the paired event's tier over there
};

/// A lightcone flattened to per-qubit tiered event sequences.
struct Cone {
  std::vector<std::size_t> qubits;      ///< original ids, sorted
  std::vector<std::vector<Event>> seq;  ///< by dense qubit index, tier order
  std::vector<std::size_t> tiers;       ///< tier count by dense qubit index
  std::vector<char> is_root;            ///< by dense qubit index
  std::size_t gates = 0;
};

/// Drops the cone gates that cancel inside <+| U† (Z_u Z_v) U |+>.
///
/// lightcone_circuit is a SYNTACTIC backward cone: once a qubit activates,
/// every earlier gate touching it is kept, which cascades along the
/// edge-list-ordered cost layer and drags in gates that contribute nothing.
/// Which junk a cone picks up depends on the GLOBAL gate order, so without
/// this strip two symmetric edges rarely look alike.
///
/// The scan walks back to front tracking the observable conjugated through
/// the KEPT gates, O' = A† (Z_u Z_v) A, via two per-wire flags: `support`
/// (O' may act on this wire) and `nd` (O' may be non-diagonal on it).
/// Invariant: O' is block-diagonal in the computational basis of every
/// support wire with nd=false (O' = Σ_z |z><z| ⊗ A_z over those wires).
/// Gate G then cancels against its adjoint (G† O' G = O') when
///   * wires(G) ∩ support = ∅ — disjoint operators commute — or
///   * G is diagonal and every wire it touches has nd=false: G is a phase
///     per block, Σ_z phase(z) |z><z| ⊗ I, and commutes with O'.
/// A kept gate adds its wires to `support`; a kept NON-diagonal gate also
/// raises `nd` there (conjugating by a diagonal gate preserves every block
/// structure, so nd survives diagonal keeps). The roots start in `support`
/// with nd=false — the observable itself is diagonal.
std::vector<circuit::Gate> stripped_cone_gates(const circuit::Circuit& cone,
                                               std::size_t u, std::size_t v) {
  std::vector<char> support(cone.num_qubits(), 0);
  std::vector<char> nd(cone.num_qubits(), 0);
  support[u] = 1;
  support[v] = 1;
  std::vector<circuit::Gate> kept;
  kept.reserve(cone.num_gates());
  const auto& gates = cone.gates();
  for (std::size_t i = gates.size(); i-- > 0;) {
    const circuit::Gate& g = gates[i];
    const bool two = g.arity() == 2;
    const bool touches = support[g.q0] || (two && support[g.q1]);
    if (!touches) continue;
    const bool diag = circuit::is_diagonal(g.kind);
    const bool any_nd = nd[g.q0] || (two && nd[g.q1]);
    if (diag && !any_nd) continue;
    support[g.q0] = 1;
    if (two) support[g.q1] = 1;
    if (!diag) {
      nd[g.q0] = 1;
      if (two) nd[g.q1] = 1;
    }
    kept.push_back(g);
  }
  std::reverse(kept.begin(), kept.end());
  return kept;
}

Cone build_cone(const circuit::Circuit& circuit, std::size_t u,
                std::size_t v) {
  std::set<std::size_t> active;
  const circuit::Circuit cone =
      lightcone_circuit(circuit, {u, v}, &active);
  const std::vector<circuit::Gate> kept = stripped_cone_gates(cone, u, v);
  // Re-derive the qubit set from the surviving gates: stripping can orphan
  // whole qubits the syntactic cone had activated.
  active.clear();
  for (const circuit::Gate& g : kept) {
    active.insert(g.q0);
    if (g.arity() == 2) active.insert(g.q1);
  }
  active.insert(u);
  active.insert(v);

  Cone c;
  c.qubits.assign(active.begin(), active.end());
  c.gates = kept.size();
  std::unordered_map<std::size_t, std::size_t> dense;
  for (std::size_t i = 0; i < c.qubits.size(); ++i) dense[c.qubits[i]] = i;
  c.seq.resize(c.qubits.size());
  c.tiers.assign(c.qubits.size(), 0);
  c.is_root.assign(c.qubits.size(), 0);
  c.is_root[dense[u]] = 1;
  c.is_root[dense[v]] = 1;

  // open_diag[w]: the wire's latest tier is a still-growing diagonal tier.
  std::vector<char> open_diag(c.qubits.size(), 0);
  auto place = [&](std::size_t w, bool diagonal) -> std::size_t {
    if (diagonal && open_diag[w]) return c.tiers[w] - 1;
    open_diag[w] = diagonal ? 1 : 0;
    return c.tiers[w]++;
  };

  for (const circuit::Gate& g : kept) {
    std::uint64_t base = kFnvBasis;
    base = fnv_mix(base, static_cast<std::uint64_t>(g.kind));
    base = fnv_mix(base, param_sig(g.param));
    const bool diag = circuit::is_diagonal(g.kind);
    if (g.arity() == 1) {
      const std::size_t w = dense[g.q0];
      c.seq[w].push_back({fnv_mix(base, 0), place(w, diag), kNone, kNone});
      continue;
    }
    const std::size_t a = dense[g.q0];
    const std::size_t b = dense[g.q1];
    const bool sym = symmetric_two_qubit(g.kind);
    const std::size_t ta = place(a, diag);
    const std::size_t tb = place(b, diag);
    c.seq[a].push_back({fnv_mix(base, sym ? 0 : 1), ta, b, tb});
    c.seq[b].push_back({fnv_mix(base, sym ? 0 : 2), tb, a, ta});
  }
  return c;
}

/// Deterministic fold of an UNORDERED set of per-event hashes within one
/// tier: sort, then mix in order, bracketed by the tier size.
std::uint64_t fold_tier(std::uint64_t h, std::vector<std::uint64_t>& scratch) {
  std::sort(scratch.begin(), scratch.end());
  h = fnv_mix(h, scratch.size());
  for (std::uint64_t e : scratch) h = fnv_mix(h, e);
  scratch.clear();
  return h;
}

/// Walks one wire tier by tier (events are already grouped: tiers are
/// assigned monotonically during the build), folding f(event) hashes per
/// tier in dependency order.
template <typename F>
std::uint64_t fold_wire(const Cone& c, std::size_t q, std::uint64_t h, F f) {
  std::vector<std::uint64_t> scratch;
  std::size_t current = kNone;
  for (const Event& e : c.seq[q]) {
    if (e.tier != current) {
      if (current != kNone) h = fold_tier(h, scratch);
      current = e.tier;
    }
    scratch.push_back(f(e));
  }
  if (current != kNone) h = fold_tier(h, scratch);
  return h;
}

/// Initial WL color: the root flag plus the wire's tiered event signatures
/// (no neighbourhood information yet).
std::vector<std::uint64_t> initial_colors(const Cone& c) {
  std::vector<std::uint64_t> colors(c.qubits.size());
  for (std::size_t q = 0; q < c.qubits.size(); ++q) {
    std::uint64_t h = kFnvBasis;
    h = fnv_mix(h, c.is_root[q] ? 2 : 1);
    h = fnv_mix(h, c.tiers[q]);
    colors[q] = fold_wire(c, q, h, [](const Event& e) { return e.sig; });
  }
  return colors;
}

/// One WL refinement round: fold each event's partner color and partner tier
/// into the qubit's color. Tier ORDER is part of the structure (unlike plain
/// graph WL), membership WITHIN a tier is not.
std::vector<std::uint64_t> refine(const Cone& c,
                                  const std::vector<std::uint64_t>& colors) {
  std::vector<std::uint64_t> next(colors.size());
  for (std::size_t q = 0; q < colors.size(); ++q) {
    const std::uint64_t h = fnv_mix(kFnvBasis, colors[q]);
    next[q] = fold_wire(c, q, h, [&](const Event& e) {
      std::uint64_t eh = fnv_mix(kFnvBasis, e.sig);
      if (e.partner == kNone) {
        eh = fnv_mix(eh, 0x517cc1b727220a95ULL);
      } else {
        eh = fnv_mix(eh, colors[e.partner]);
        eh = fnv_mix(eh, e.partner_tier);
      }
      return eh;
    });
  }
  return next;
}

std::size_t distinct_count(std::vector<std::uint64_t> colors) {
  std::sort(colors.begin(), colors.end());
  return static_cast<std::size_t>(
      std::unique(colors.begin(), colors.end()) - colors.begin());
}

std::vector<std::uint64_t> stable_colors(const Cone& c) {
  std::vector<std::uint64_t> colors = initial_colors(c);
  std::size_t classes = distinct_count(colors);
  for (std::size_t round = 0; round < c.qubits.size(); ++round) {
    std::vector<std::uint64_t> next = refine(c, colors);
    const std::size_t next_classes = distinct_count(next);
    colors = std::move(next);
    if (next_classes == classes && round > 0) break;
    classes = next_classes;
  }
  return colors;
}

/// Backtracking isomorphism search over WL color classes. Bounded: gives up
/// (returns false) after `budget` assignment attempts, which is conservative
/// — an exhausted search only means two cones get separate programs.
class IsoSearch {
 public:
  IsoSearch(const Cone& a, const Cone& b) : a_(a), b_(b) {}

  bool run() {
    const std::size_t n = a_.qubits.size();
    if (n != b_.qubits.size() || a_.gates != b_.gates) return false;
    const auto ca = stable_colors(a_);
    const auto cb = stable_colors(b_);
    {
      auto sa = ca;
      auto sb = cb;
      std::sort(sa.begin(), sa.end());
      std::sort(sb.begin(), sb.end());
      if (sa != sb) return false;
    }
    // Candidate sets: same WL color AND same local tier signature.
    candidates_.resize(n);
    for (std::size_t qa = 0; qa < n; ++qa) {
      for (std::size_t qb = 0; qb < n; ++qb) {
        if (ca[qa] != cb[qb]) continue;
        if (a_.is_root[qa] != b_.is_root[qb]) continue;
        if (!same_local(qa, qb)) continue;
        candidates_[qa].push_back(qb);
      }
      if (candidates_[qa].empty()) return false;
    }
    // Most-constrained-first assignment order.
    order_.resize(n);
    for (std::size_t i = 0; i < n; ++i) order_[i] = i;
    std::sort(order_.begin(), order_.end(), [this](std::size_t x,
                                                   std::size_t y) {
      return candidates_[x].size() < candidates_[y].size();
    });
    phi_.assign(n, kNone);
    used_.assign(n, 0);
    return assign(0);
  }

 private:
  /// (sig, partner-or-marker, partner tier): the matchable identity of one
  /// event inside its tier. Events with equal keys are interchangeable.
  using EventKey = std::tuple<std::uint64_t, std::size_t, std::size_t>;

  /// Tier-wise local comparability: same tier count, and per tier the same
  /// multiset of (sig, has-partner, partner tier) — within a tier events
  /// are unordered, so compare sorted.
  bool same_local(std::size_t qa, std::size_t qb) const {
    if (a_.tiers[qa] != b_.tiers[qb]) return false;
    const auto& sa = a_.seq[qa];
    const auto& sb = b_.seq[qb];
    if (sa.size() != sb.size()) return false;
    auto keys = [](const std::vector<Event>& seq) {
      std::vector<std::tuple<std::size_t, std::uint64_t, std::size_t,
                             std::size_t>> k;
      k.reserve(seq.size());
      for (const Event& e : seq)
        k.emplace_back(e.tier, e.sig, e.partner == kNone ? 0u : 1u,
                       e.partner_tier);
      std::sort(k.begin(), k.end());
      return k;
    };
    return keys(sa) == keys(sb);
  }

  /// All pairing constraints involving qa and already-assigned partners:
  /// per tier, every a-event whose partner is mapped must find its own
  /// (sig, mapped partner, partner tier) supply among b's same-tier events
  /// — a counting match, since equal-key events are interchangeable.
  bool consistent(std::size_t qa, std::size_t qb) const {
    std::map<std::pair<std::size_t, EventKey>, long> balance;
    for (const Event& e : a_.seq[qa]) {
      if (e.partner == kNone) continue;
      const std::size_t pa = phi_[e.partner];
      if (pa == kNone) continue;
      ++balance[{e.tier, {e.sig, pa, e.partner_tier}}];
    }
    if (balance.empty()) return true;
    for (const Event& e : b_.seq[qb]) {
      if (e.partner == kNone) continue;
      const auto it =
          balance.find({e.tier, {e.sig, e.partner, e.partner_tier}});
      if (it != balance.end()) --it->second;
    }
    for (const auto& [key, count] : balance)
      if (count > 0) return false;
    return true;
  }

  bool assign(std::size_t depth) {
    if (depth == order_.size()) return true;
    const std::size_t qa = order_[depth];
    for (std::size_t qb : candidates_[qa]) {
      if (used_[qb]) continue;
      if (++attempts_ > kBudget) return false;
      if (!consistent(qa, qb)) continue;
      phi_[qa] = qb;
      used_[qb] = 1;
      if (assign(depth + 1)) return true;
      phi_[qa] = kNone;
      used_[qb] = 0;
    }
    return false;
  }

  static constexpr std::size_t kBudget = 1u << 17;
  const Cone& a_;
  const Cone& b_;
  std::vector<std::vector<std::size_t>> candidates_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> phi_;
  std::vector<char> used_;
  std::size_t attempts_ = 0;
};

std::string to_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i)
    out[15 - i] = digits[(v >> (4 * i)) & 0xf];
  return out;
}

}  // namespace

LightconeShape lightcone_shape(const circuit::Circuit& circuit, std::size_t u,
                               std::size_t v) {
  QARCH_REQUIRE(u < circuit.num_qubits() && v < circuit.num_qubits(),
                "lightcone_shape: qubit out of range");
  const Cone cone = build_cone(circuit, u, v);
  std::vector<std::uint64_t> colors = stable_colors(cone);
  std::sort(colors.begin(), colors.end());
  std::uint64_t h = kFnvBasis;
  h = fnv_mix(h, cone.qubits.size());
  h = fnv_mix(h, cone.gates);
  for (std::uint64_t c : colors) h = fnv_mix(h, c);

  LightconeShape shape;
  shape.qubits = cone.qubits.size();
  shape.gates = cone.gates;
  shape.key = "lc2:" + to_hex(h) + ":" + std::to_string(shape.qubits) + "q" +
              std::to_string(shape.gates) + "g";
  return shape;
}

bool lightcone_equivalent(const circuit::Circuit& circuit, std::size_t u1,
                          std::size_t v1, std::size_t u2, std::size_t v2) {
  if ((u1 == u2 && v1 == v2) || (u1 == v2 && v1 == u2)) return true;
  const Cone a = build_cone(circuit, u1, v1);
  const Cone b = build_cone(circuit, u2, v2);
  IsoSearch search(a, b);
  return search.run();
}

}  // namespace qarch::qtensor
