// Contraction planning: cost models and automatic heuristic selection.
//
// QTensor runs several ordering optimizers and keeps the cheapest plan. The
// planner reproduces that: it scores candidate orders with a FLOP/memory
// cost model (exact for bucket elimination over dimension-2 variables) and
// returns the best, optionally considering sliced execution.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "qtensor/network.hpp"
#include "qtensor/ordering.hpp"

namespace qarch::qtensor {

/// Predicted cost of contracting a network along one order.
struct PlanCost {
  std::size_t width = 0;        ///< max intermediate rank
  double flops = 0.0;           ///< multiply-adds across all buckets
  double peak_entries = 0.0;    ///< largest single intermediate tensor
};

/// Exact symbolic cost of bucket elimination along `order`.
PlanCost estimate_cost(const TensorNetwork& network,
                       const std::vector<VarId>& order);

/// A selected plan: the order, its cost, and which heuristic produced it.
struct ContractionPlan {
  std::vector<VarId> order;
  PlanCost cost;
  std::string heuristic;
};

/// Planner configuration: which heuristics compete.
struct PlannerOptions {
  bool try_greedy_degree = true;
  bool try_greedy_fill = true;
  std::size_t random_restarts = 8;  ///< 0 disables the random competitor
  std::uint64_t seed = 17;
};

/// Runs every enabled heuristic and returns the plan with minimal flops
/// (ties broken by width).
ContractionPlan plan_contraction(const TensorNetwork& network,
                                 const PlannerOptions& options = {});

}  // namespace qarch::qtensor
