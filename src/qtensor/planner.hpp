// Contraction planning: cost models and automatic heuristic selection.
//
// QTensor runs several ordering optimizers and keeps the cheapest plan. The
// planner reproduces that: it scores candidate orders with a FLOP/memory
// cost model (exact for bucket elimination over dimension-2 variables) and
// returns the best, optionally considering sliced execution.
//
// The bake-off is parallel and speculative: the shared line graph and cost
// model are built ONCE per network, every enabled heuristic (greedy-degree,
// greedy-fill, the lazy priority contractor, and each random restart) runs
// as an independent competitor — in parallel when `workers > 1` — and the
// winner is chosen by a deterministic (flops, width, competitor index)
// comparison, so the selected plan is identical at every worker count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "qtensor/network.hpp"
#include "qtensor/ordering.hpp"

namespace qarch::qtensor {

/// Predicted cost of contracting a network along one order.
struct PlanCost {
  std::size_t width = 0;        ///< max intermediate rank
  double flops = 0.0;           ///< multiply-adds across all buckets
  double peak_entries = 0.0;    ///< largest single intermediate tensor
};

/// Shared symbolic cost model for one network: tensor label sets as packed
/// bitsets, built once and scored against many candidate orders. Replaces
/// the old per-call set-of-sets replay — competing N heuristics used to pay
/// N network traversals plus allocation-heavy std::set unions; now they
/// share one immutable CostModel and each `cost()` call is word-parallel
/// bit arithmetic over per-call scratch.
class CostModel {
 public:
  explicit CostModel(const TensorNetwork& network);

  /// Exact symbolic cost of bucket elimination along `order`.
  [[nodiscard]] PlanCost cost(const std::vector<VarId>& order) const;

  [[nodiscard]] std::size_t num_vars() const { return num_vars_; }

 private:
  std::size_t num_vars_ = 0;
  std::size_t words_ = 0;                  ///< 64-bit words per label bitset
  std::vector<std::uint64_t> bits_;        ///< tensors * words_, row-major
  std::size_t num_tensors_ = 0;
};

/// Exact symbolic cost of bucket elimination along `order`.
/// Convenience wrapper: builds a throwaway CostModel. Callers scoring many
/// orders against one network should hold a CostModel instead.
PlanCost estimate_cost(const TensorNetwork& network,
                       const std::vector<VarId>& order);

/// A selected plan: the order, its cost, and which heuristic produced it.
struct ContractionPlan {
  std::vector<VarId> order;
  PlanCost cost;
  std::string heuristic;
};

/// Planner configuration: which heuristics compete and how.
struct PlannerOptions {
  bool try_greedy_degree = true;
  bool try_greedy_fill = true;
  bool try_priority = true;         ///< lazy priority-queue contractor
  std::size_t random_restarts = 8;  ///< 0 disables the random competitor
  std::uint64_t seed = 17;
  /// Mix the seed with a structural hash of the network, so random restarts
  /// are reproducible per lightcone shape rather than correlated across
  /// every edge of a problem, and stable across runs and worker counts.
  bool seed_from_structure = true;
  /// Competitors run speculatively on this many threads (1 = inline). The
  /// chosen plan never depends on this value.
  std::size_t workers = 1;
};

/// Runs every enabled heuristic and returns the plan with minimal flops
/// (ties broken by width, then by a fixed competitor order).
ContractionPlan plan_contraction(const TensorNetwork& network,
                                 const PlannerOptions& options = {});

/// Structural fingerprint of a network: variable count plus every tensor's
/// label list, order-sensitive. Two networks with equal hashes have the
/// same elimination-order search space (tensor DATA is ignored — any order
/// valid for one is valid, and equally costly, for the other). Seeds the
/// planner RNG and guards persistent plan-cache entries.
std::uint64_t network_structure_hash(const TensorNetwork& network);

/// Process-wide count of plan_contraction invocations. The persistent plan
/// cache is validated by this probe: a warm run must plan nothing.
std::size_t planner_invocation_count();
void reset_planner_invocation_count();

}  // namespace qarch::qtensor
