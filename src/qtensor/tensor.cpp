#include "qtensor/tensor.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace qarch::qtensor {

Tensor::Tensor(std::vector<VarId> labels, std::vector<cplx> data)
    : labels_(std::move(labels)), data_(std::move(data)) {
  QARCH_REQUIRE(data_.size() == (std::size_t{1} << labels_.size()),
                "tensor data size must be 2^rank");
  auto sorted = labels_;
  std::sort(sorted.begin(), sorted.end());
  QARCH_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                    sorted.end(),
                "tensor labels must be distinct");
}

Tensor Tensor::scalar(cplx value) { return Tensor({}, {value}); }

bool Tensor::has_label(VarId v) const {
  return std::find(labels_.begin(), labels_.end(), v) != labels_.end();
}

cplx Tensor::at(std::span<const int> bits) const {
  QARCH_REQUIRE(bits.size() == rank(), "assignment size mismatch");
  std::size_t idx = 0;
  for (std::size_t k = 0; k < bits.size(); ++k)
    idx = (idx << 1) | static_cast<std::size_t>(bits[k] & 1);
  return data_[idx];
}

cplx Tensor::scalar_value() const {
  QARCH_REQUIRE(rank() == 0, "scalar_value on non-scalar tensor");
  return data_[0];
}

Tensor Tensor::sum_over(VarId v) const {
  const auto it = std::find(labels_.begin(), labels_.end(), v);
  QARCH_REQUIRE(it != labels_.end(), "sum_over: variable not present");
  const std::size_t pos = static_cast<std::size_t>(it - labels_.begin());
  const std::size_t r = rank();
  // Stride of position pos (labels_[0] outermost => stride 2^(r-1-pos)).
  const std::size_t stride = std::size_t{1} << (r - 1 - pos);

  std::vector<VarId> new_labels;
  new_labels.reserve(r - 1);
  for (std::size_t k = 0; k < r; ++k)
    if (k != pos) new_labels.push_back(labels_[k]);

  std::vector<cplx> out(std::size_t{1} << (r - 1));
  std::size_t w = 0;
  // Iterate blocks where the summed bit is contiguous.
  const std::size_t block = stride, period = stride * 2;
  for (std::size_t base = 0; base < data_.size(); base += period)
    for (std::size_t off = 0; off < block; ++off)
      out[w++] = data_[base + off] + data_[base + block + off];
  return Tensor(std::move(new_labels), std::move(out));
}

Tensor Tensor::transposed(const std::vector<VarId>& new_order) const {
  QARCH_REQUIRE(new_order.size() == rank(), "transpose rank mismatch");
  const std::size_t r = rank();
  // position of each new label inside the old label list
  std::vector<std::size_t> old_pos(r);
  for (std::size_t k = 0; k < r; ++k) {
    const auto it = std::find(labels_.begin(), labels_.end(), new_order[k]);
    QARCH_REQUIRE(it != labels_.end(), "transpose: label not present");
    old_pos[k] = static_cast<std::size_t>(it - labels_.begin());
  }
  std::vector<cplx> out(data_.size());
  for (std::size_t idx = 0; idx < data_.size(); ++idx) {
    // idx enumerates the NEW layout; map to old flat index.
    std::size_t old_idx = 0;
    for (std::size_t k = 0; k < r; ++k) {
      const std::size_t bit = (idx >> (r - 1 - k)) & 1;
      old_idx |= bit << (r - 1 - old_pos[k]);
    }
    out[idx] = data_[old_idx];
  }
  return Tensor(new_order, std::move(out));
}

Tensor Tensor::conjugated() const {
  Tensor t = *this;
  for (auto& x : t.data_) x = std::conj(x);
  return t;
}

double Tensor::distance(const Tensor& rhs) const {
  QARCH_REQUIRE(labels_ == rhs.labels_, "distance: label mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    s += std::norm(data_[i] - rhs.data_[i]);
  return std::sqrt(s);
}

std::string Tensor::to_string() const {
  std::ostringstream os;
  os << "Tensor[";
  for (std::size_t k = 0; k < labels_.size(); ++k) {
    if (k) os << ',';
    os << 'v' << labels_[k];
  }
  os << "] (rank " << rank() << ")";
  return os.str();
}

}  // namespace qarch::qtensor
