// Compiled contraction plans — the qtensor analogue of sim::SimProgram.
//
// A ContractionProgram compiles one (circuit, Z_u Z_v lightcone) pair ONCE:
//
//   * the tensor network is built a single time (topology, simplified
//     lightcone, diagonal rank reduction) and its tensors baked, except the
//     handful whose gates carry symbolic parameters;
//   * the contraction order comes from the planner (planner.cpp competing
//     the ordering.cpp heuristics under the exact FLOP cost model);
//   * the slicing decision is taken at compile time: if the planned width
//     exceeds the budget, slice variables are chosen and the schedule is
//     compiled against the projected structure;
//   * bucket elimination is flattened into a static schedule of product+sum
//     steps over preallocated scratch buffers.
//
// A new theta then costs only a per-symbol-gate rebind (a few trig calls)
// plus the replay — no network rebuild, no ordering, no per-step set algebra,
// no intermediate allocations. Replays are const and thread-safe: concurrent
// callers lease per-thread scratch workspaces from an internal pool, so one
// program can be shared across search workers and per-edge parallel_for
// lanes. qaoa::EnergyEvaluator keys programs into its plan_for fingerprint
// cache, giving `backend=qtensor` the same one-compile-per-candidate
// contract the statevector engine has (probe: network_build_count()).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/annotations.hpp"
#include "qtensor/backend.hpp"
#include "qtensor/network.hpp"
#include "qtensor/plan_cache.hpp"
#include "qtensor/planner.hpp"

namespace qarch::qtensor {

/// Compile-time configuration of a ContractionProgram.
struct ProgramOptions {
  NetworkOptions network;   ///< lightcone / diagonal rank-reduction toggles
  PlannerOptions planner;   ///< which ordering heuristics compete
  /// Slicing decision: when the planned contraction width exceeds this,
  /// slice variables are chosen (greedy max-degree, re-planning after each)
  /// until the projected width fits or max_slice_vars is reached. The
  /// threshold is a width (intermediate-tensor rank): 30 ≈ 16 GiB, far above
  /// any QAOA lightcone this repo contracts, so slicing is effectively a
  /// safety valve by default. 0 disables slicing entirely.
  std::size_t slice_above_width = 30;
  std::size_t max_slice_vars = 4;  ///< at most 2^this sub-contractions
  /// When set, compile() consults this shared store before invoking the
  /// planner (keyed by lightcone shape + network structure hash) and
  /// records the winning order after a live plan. Cached orders skip
  /// planning entirely — the warm-run path of the persistent plan cache.
  std::shared_ptr<PlanCache> plan_cache;
  /// Canonical lightcone shape key of (circuit, u, v) when the caller has
  /// already computed it (energy.cpp's dedup pass has); empty = compute on
  /// demand when a plan_cache is attached.
  std::string shape_key;
};

/// Compile-time facts about one program (reported by benches/tests).
struct ProgramStats {
  std::size_t tensors = 0;        ///< network tensors (inputs)
  std::size_t bound_tensors = 0;  ///< tensors rebound per theta
  std::size_t steps = 0;          ///< bucket-elimination steps
  std::size_t width = 0;          ///< max intermediate rank of the schedule
  double est_flops = 0.0;         ///< planner cost model, per slice
  std::size_t slice_vars = 0;     ///< 0 = unsliced
  std::size_t scratch_entries = 0;  ///< preallocated cplx entries per lease
  std::string heuristic;          ///< winning ordering heuristic
  bool plan_cached = false;       ///< order came from the plan cache
  std::string shape_key;          ///< canonical lightcone shape (if computed)
};

/// One <Z_u Z_v> expectation compiled against fixed circuit structure,
/// replayable for any theta.
class ContractionProgram {
 public:
  ContractionProgram(const circuit::Circuit& circuit, std::size_t u,
                     std::size_t v, const ProgramOptions& options = {});

  /// Single-qubit form: compiles <Z_q> instead of <Z_u Z_v> (Hamiltonians
  /// with field terms). Plan-cache keyed under a "z"-prefixed shape key +
  /// structure hash; everything else is identical.
  ContractionProgram(const circuit::Circuit& circuit, std::size_t q,
                     const ProgramOptions& options = {});
  ~ContractionProgram();

  // Non-copyable and non-movable (the scratch pool is address-stable);
  // containers hold programs through unique_ptr.
  ContractionProgram(const ContractionProgram&) = delete;
  ContractionProgram& operator=(const ContractionProgram&) = delete;

  /// Rebinds the parameterized gate tensors to `theta` and replays the
  /// compiled schedule. Thread-safe; `backend` provides the bucket-product
  /// kernel (see Backend::product_into).
  [[nodiscard]] cplx contract(std::span<const double> theta,
                              const Backend& backend) const;

  /// contract() with the Hermitian-expectation check applied: the imaginary
  /// part is asserted ~0 and the real part returned.
  [[nodiscard]] double expectation_zz(std::span<const double> theta,
                                      const Backend& backend) const;

  [[nodiscard]] const ProgramStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t num_params() const { return num_params_; }

 private:
  /// One flattened bucket-elimination step: Backend::product_sum_into
  /// multiplies `factors` over `out_labels` (eliminated variable first) and
  /// folds out that variable as it produces, writing the 2^(rank-1)-entry
  /// result straight into slot `out_slot` — the full product is never
  /// materialized.
  struct Step {
    std::vector<std::size_t> factors;   ///< input slot ids
    std::vector<VarId> out_labels;      ///< union labels, eliminated var first
    std::size_t out_slot = 0;
    std::size_t entries = 0;            ///< 2^|out_labels|
  };

  /// Per-replay workspace: slot tensors (inputs + intermediates) and
  /// unprojected copies of slice-carrying inputs.
  struct Scratch;
  struct ScratchLease;

  void compile(const circuit::Circuit& circuit,
               const std::vector<std::size_t>& targets);
  void init_scratch(Scratch& s) const;
  void rebind(Scratch& s, std::span<const double> theta) const;
  [[nodiscard]] cplx run_schedule(Scratch& s, const Backend& backend) const;
  [[nodiscard]] ScratchLease lease() const;

  ProgramOptions options_;
  std::size_t num_params_ = 0;
  std::vector<Tensor> inputs_;          ///< baked network tensors (unprojected)
  std::vector<GateBinding> bindings_;   ///< theta-dependent inputs
  std::vector<VarId> slice_vars_;
  std::vector<std::size_t> sliced_inputs_;  ///< inputs carrying a slice var
  std::vector<Step> steps_;
  std::vector<std::size_t> final_slots_;    ///< rank-0 slots left at the end
  std::size_t num_slots_ = 0;
  ProgramStats stats_;

  mutable Mutex pool_mutex_{60, "cache.scratch"};
  mutable std::vector<std::unique_ptr<Scratch>> pool_
      QARCH_GUARDED_BY(pool_mutex_);
};

}  // namespace qarch::qtensor
