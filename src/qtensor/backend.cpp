#include "qtensor/backend.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/simd.hpp"

namespace qarch::qtensor {

namespace {

/// Per-factor stride of each output bit position: factor_index(i) =
/// sum over positions p of bit_p(i) * stride[p]. Positions whose label is
/// absent from the factor get stride 0 (broadcast).
std::vector<std::size_t> factor_strides(const Tensor& factor,
                                        const std::vector<VarId>& out_labels) {
  const std::size_t out_rank = out_labels.size();
  std::vector<std::size_t> strides(out_rank, 0);
  const auto& fl = factor.labels();
  for (std::size_t j = 0; j < fl.size(); ++j) {
    const auto it = std::find(out_labels.begin(), out_labels.end(), fl[j]);
    QARCH_REQUIRE(it != out_labels.end(),
                  "factor label missing from product output labels");
    const std::size_t pos = static_cast<std::size_t>(it - out_labels.begin());
    strides[pos] = std::size_t{1} << (fl.size() - 1 - j);
  }
  return strides;
}

/// Factor flat index for output index i given position strides.
std::size_t decode_index(std::size_t i, const std::vector<std::size_t>& st,
                         std::size_t out_rank) {
  std::size_t idx = 0;
  for (std::size_t p = 0; p < out_rank; ++p)
    if ((i >> (out_rank - 1 - p)) & 1) idx += st[p];
  return idx;
}

void product_range(const std::vector<const Tensor*>& factors,
                   const std::vector<std::vector<std::size_t>>& strides,
                   std::size_t out_rank, std::size_t begin, std::size_t end,
                   cplx* out) {
  const std::size_t num_factors = factors.size();
  if (begin >= end) return;

  // Odometer walk: incrementing i flips its trailing one-bits to zero and
  // sets the next bit; the change to each factor's flat index is therefore a
  // function of countr_zero(i) alone. Precompute delta[f][t] =
  // stride_of_bit(t) - sum(stride_of_bit(b) for b < t), where bit b of i
  // corresponds to output position out_rank-1-b.
  std::vector<std::vector<std::ptrdiff_t>> delta(num_factors);
  std::vector<const cplx*> data(num_factors);
  std::vector<std::size_t> idx(num_factors);
  for (std::size_t f = 0; f < num_factors; ++f) {
    const auto& st = strides[f];
    auto& d = delta[f];
    d.resize(out_rank);
    std::ptrdiff_t prefix = 0;  // sum of strides of bits below t
    for (std::size_t t = 0; t < out_rank; ++t) {
      const auto s = static_cast<std::ptrdiff_t>(st[out_rank - 1 - t]);
      d[t] = s - prefix;
      prefix += s;
    }
    data[f] = factors[f]->data().data();
    idx[f] = decode_index(begin, st, out_rank);
  }

  for (std::size_t i = begin;;) {
    cplx acc = data[0][idx[0]];
    for (std::size_t f = 1; f < num_factors; ++f) acc *= data[f][idx[f]];
    out[i] = acc;
    if (++i >= end) break;
    const int t = std::countr_zero(i);
    for (std::size_t f = 0; f < num_factors; ++f)
      idx[f] = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(idx[f]) +
                                        delta[f][static_cast<std::size_t>(t)]);
  }
}

/// Fused variant of product_range: walks the REDUCED index space (the
/// eliminated variable — position 0 of the full label set — dropped) and
/// writes lo+hi directly, where hi offsets each factor by its stride of the
/// eliminated variable (0 for factors not carrying it, which cannot happen
/// in a bucket, but broadcasting keeps the code uniform).
void product_sum_range(const std::vector<const Tensor*>& factors,
                       const std::vector<std::vector<std::size_t>>& strides,
                       std::size_t out_rank, std::size_t begin,
                       std::size_t end, cplx* out) {
  const std::size_t num_factors = factors.size();
  const std::size_t reduced_rank = out_rank - 1;
  if (begin >= end) return;

  std::vector<std::vector<std::ptrdiff_t>> delta(num_factors);
  std::vector<const cplx*> data(num_factors);
  std::vector<std::size_t> idx(num_factors);
  std::vector<std::size_t> v_stride(num_factors);
  for (std::size_t f = 0; f < num_factors; ++f) {
    const auto& st = strides[f];
    v_stride[f] = st[0];
    // Reduced strides: positions 1..out_rank-1 keep their full-space stride;
    // the odometer walk is identical to product_range's, one bit shorter.
    auto& d = delta[f];
    d.resize(reduced_rank);
    std::ptrdiff_t prefix = 0;
    for (std::size_t t = 0; t < reduced_rank; ++t) {
      const auto s = static_cast<std::ptrdiff_t>(st[out_rank - 1 - t]);
      d[t] = s - prefix;
      prefix += s;
    }
    data[f] = factors[f]->data().data();
    std::size_t i0 = 0;
    for (std::size_t p = 0; p < reduced_rank; ++p)
      if ((begin >> (reduced_rank - 1 - p)) & 1) i0 += st[p + 1];
    idx[f] = i0;
  }

  // Vectorized path: per factor, walk the odometer once to GATHER the
  // (lo, hi) pair stream into contiguous scratch runs, then chain the factor
  // products through lane-wise SIMD multiplies — in the SAME factor order as
  // the scalar loop below — and emit lo+hi with one vectorized add. The
  // gathers are scalar either way (the indices are data-dependent), but the
  // 2*(num_factors-1) complex multiplies and the final add per output, the
  // bulk of the arithmetic, run two complex lanes per AVX2 register.
  // sim::simd::active() folds in the QARCH_SIMD=0 override and the CPU
  // check, so this block self-disables into the scalar walk.
  constexpr std::size_t kBlock = 64;
  if (sim::simd::active() && end - begin >= 32) {
    cplx lo_acc[kBlock], hi_acc[kBlock];
    cplx lo_t[kBlock], hi_t[kBlock];
    std::size_t i = begin;
    while (i < end) {
      const std::size_t len = std::min(kBlock, end - i);
      for (std::size_t f = 0; f < num_factors; ++f) {
        cplx* lo_dst = (f == 0) ? lo_acc : lo_t;
        cplx* hi_dst = (f == 0) ? hi_acc : hi_t;
        const cplx* src = data[f];
        const auto& d = delta[f];
        const std::size_t vs = v_stride[f];
        std::size_t cur = idx[f];
        for (std::size_t j = 0; j < len; ++j) {
          lo_dst[j] = src[cur];
          hi_dst[j] = src[cur + vs];
          if (const std::size_t next = i + j + 1; next < end)
            cur = static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(cur) +
                d[static_cast<std::size_t>(std::countr_zero(next))]);
        }
        idx[f] = cur;
        if (f > 0) {
          sim::simd::cplx_mul_runs(lo_acc, lo_t, len);
          sim::simd::cplx_mul_runs(hi_acc, hi_t, len);
        }
      }
      sim::simd::cplx_add_runs(out + i, lo_acc, hi_acc, len);
      i += len;
    }
    return;
  }

  for (std::size_t i = begin;;) {
    cplx lo = data[0][idx[0]];
    cplx hi = data[0][idx[0] + v_stride[0]];
    for (std::size_t f = 1; f < num_factors; ++f) {
      lo *= data[f][idx[f]];
      hi *= data[f][idx[f] + v_stride[f]];
    }
    out[i] = lo + hi;
    if (++i >= end) break;
    const int t = std::countr_zero(i);
    for (std::size_t f = 0; f < num_factors; ++f)
      idx[f] = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(idx[f]) +
                                        delta[f][static_cast<std::size_t>(t)]);
  }
}

}  // namespace

Tensor Backend::product(const std::vector<const Tensor*>& factors,
                        const std::vector<VarId>& out_labels) const {
  std::vector<cplx> out(std::size_t{1} << out_labels.size());
  product_into(factors, out_labels, out.data());
  return Tensor(out_labels, std::move(out));
}

void SerialCpuBackend::product_into(const std::vector<const Tensor*>& factors,
                                    const std::vector<VarId>& out_labels,
                                    cplx* out) const {
  QARCH_REQUIRE(!factors.empty(), "product of zero factors");
  const std::size_t out_rank = out_labels.size();
  std::vector<std::vector<std::size_t>> strides;
  strides.reserve(factors.size());
  for (const Tensor* f : factors)
    strides.push_back(factor_strides(*f, out_labels));
  product_range(factors, strides, out_rank, 0, std::size_t{1} << out_rank,
                out);
}

void SerialCpuBackend::product_sum_into(
    const std::vector<const Tensor*>& factors,
    const std::vector<VarId>& out_labels, cplx* out) const {
  QARCH_REQUIRE(!factors.empty(), "product of zero factors");
  QARCH_REQUIRE(!out_labels.empty(), "product_sum_into needs a variable");
  const std::size_t out_rank = out_labels.size();
  std::vector<std::vector<std::size_t>> strides;
  strides.reserve(factors.size());
  for (const Tensor* f : factors)
    strides.push_back(factor_strides(*f, out_labels));
  product_sum_range(factors, strides, out_rank, 0,
                    std::size_t{1} << (out_rank - 1), out);
}

ParallelCpuBackend::ParallelCpuBackend(std::size_t workers,
                                       std::size_t parallel_threshold_rank)
    : workers_(workers == 0
                   ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                   : workers),
      parallel_threshold_rank_(parallel_threshold_rank) {}

void ParallelCpuBackend::product_into(
    const std::vector<const Tensor*>& factors,
    const std::vector<VarId>& out_labels, cplx* out) const {
  QARCH_REQUIRE(!factors.empty(), "product of zero factors");
  const std::size_t out_rank = out_labels.size();
  if (workers_ <= 1 || out_rank < parallel_threshold_rank_) {
    SerialCpuBackend{}.product_into(factors, out_labels, out);
    return;
  }

  std::vector<std::vector<std::size_t>> strides;
  strides.reserve(factors.size());
  for (const Tensor* f : factors)
    strides.push_back(factor_strides(*f, out_labels));

  const std::size_t total = std::size_t{1} << out_rank;
  const std::size_t chunk = std::max<std::size_t>(1024, total / (workers_ * 8));
  const std::size_t num_chunks = (total + chunk - 1) / chunk;
  parallel::parallel_for(
      0, num_chunks,
      [&](std::size_t c) {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(total, lo + chunk);
        product_range(factors, strides, out_rank, lo, hi, out);
      },
      workers_);
}

void ParallelCpuBackend::product_sum_into(
    const std::vector<const Tensor*>& factors,
    const std::vector<VarId>& out_labels, cplx* out) const {
  QARCH_REQUIRE(!factors.empty(), "product of zero factors");
  QARCH_REQUIRE(!out_labels.empty(), "product_sum_into needs a variable");
  const std::size_t out_rank = out_labels.size();
  if (workers_ <= 1 || out_rank < parallel_threshold_rank_) {
    SerialCpuBackend{}.product_sum_into(factors, out_labels, out);
    return;
  }

  std::vector<std::vector<std::size_t>> strides;
  strides.reserve(factors.size());
  for (const Tensor* f : factors)
    strides.push_back(factor_strides(*f, out_labels));

  const std::size_t total = std::size_t{1} << (out_rank - 1);
  const std::size_t chunk = std::max<std::size_t>(1024, total / (workers_ * 8));
  const std::size_t num_chunks = (total + chunk - 1) / chunk;
  parallel::parallel_for(
      0, num_chunks,
      [&](std::size_t c) {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(total, lo + chunk);
        product_sum_range(factors, strides, out_rank, lo, hi, out);
      },
      workers_);
}

std::unique_ptr<Backend> make_backend(const std::string& spec) {
  if (spec == "serial") return std::make_unique<SerialCpuBackend>();
  if (spec.rfind("parallel", 0) == 0) {
    std::size_t workers = 0;
    const auto colon = spec.find(':');
    if (colon != std::string::npos)
      workers = static_cast<std::size_t>(std::stoul(spec.substr(colon + 1)));
    return std::make_unique<ParallelCpuBackend>(workers);
  }
  throw InvalidArgument("unknown backend spec: " + spec);
}

}  // namespace qarch::qtensor
