// Bucket-elimination contraction and the high-level QTensor simulator facade.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "qtensor/backend.hpp"
#include "qtensor/network.hpp"
#include "qtensor/ordering.hpp"
#include "qtensor/planner.hpp"
#include "qtensor/program.hpp"

namespace qarch::qtensor {

/// Outcome of a full network contraction.
struct ContractionResult {
  cplx value{0.0, 0.0};   ///< scalar value of the closed network
  std::size_t width = 0;  ///< max intermediate tensor rank encountered
};

/// Contracts a closed network by eliminating variables in `order`
/// (must cover every variable of the network). Backend provides the
/// bucket-product kernel.
ContractionResult contract(const TensorNetwork& network,
                           const std::vector<VarId>& order,
                           const Backend& backend);

/// Ordering heuristic selector.
enum class OrderingAlgo { GreedyDegree, GreedyFill, Random, RandomRestart };

/// Parses "greedy-degree", "greedy-fill", "random", "random-restart".
OrderingAlgo ordering_from_name(const std::string& name);

/// Configuration for the QTensor simulator facade AND the qtensor energy
/// engine selected through qaoa::EnergyOptions (engine=TensorNetwork).
struct QTensorOptions {
  NetworkOptions network;                       ///< diagonal/lightcone opts
  /// Ordering heuristic of the NON-compiled paths (the one-shot facade and
  /// compile_programs=false energy plans). The compiled path ignores this
  /// and lets `planner` compete every enabled heuristic instead.
  OrderingAlgo ordering = OrderingAlgo::GreedyDegree;
  std::size_t random_restarts = 16;             ///< for RandomRestart
  std::uint64_t ordering_seed = 7;              ///< for Random/RandomRestart
  std::string backend = "serial";               ///< make_backend spec
  /// Compile per-edge ContractionPrograms inside qaoa energy plans — the
  /// qtensor analogue of EnergyOptions::sv_compile_plan. false restores the
  /// legacy rebuild-per-theta path (network rebuilt and strides recomputed
  /// every energy(theta) call, per-edge orders still cached).
  bool compile_programs = true;
  PlannerOptions planner;        ///< heuristics competing at program compile
  /// Compile-time slicing decision of the compiled path: slice when the
  /// planned width exceeds this (0 disables; see ProgramOptions).
  std::size_t slice_above_width = 30;
  std::size_t max_slice_vars = 4;
  /// Group Hamiltonian terms by canonical lightcone shape and compile ONE
  /// program per equivalence class (exact isomorphism verified) instead of
  /// one per edge; the shared value is broadcast to every member edge.
  bool dedup_shapes = true;
  /// Shared store of planned orders, consulted before every program compile
  /// and fed by every live plan. Injected by search::EvalService (which
  /// also persists it when SessionConfig::plan_cache_path is set); null
  /// disables plan reuse across programs.
  std::shared_ptr<PlanCache> plan_cache;

  /// The ProgramOptions a compiled path derives from these fields — the ONE
  /// reconciliation point, so new program knobs cannot silently diverge
  /// from the energy-plan wiring.
  [[nodiscard]] ProgramOptions program_options() const {
    ProgramOptions po;
    po.network = network;
    po.planner = planner;
    po.slice_above_width = slice_above_width;
    po.max_slice_vars = max_slice_vars;
    po.plan_cache = plan_cache;
    return po;
  }
};

/// High-level tensor-network simulator: the C++ stand-in for QTensor.
///
/// Thread-safe for concurrent calls (each call builds its own network and
/// contraction state; the backend is stateless).
class QTensorSimulator {
 public:
  explicit QTensorSimulator(QTensorOptions options = {});

  /// <+|^n U† Z_u Z_v U |+>^n. Real part returned (imaginary part is
  /// numerically ~0 for a Hermitian observable and is asserted small).
  [[nodiscard]] double expectation_zz(const circuit::Circuit& circuit,
                                      std::span<const double> theta,
                                      std::size_t u, std::size_t v) const;

  /// Amplitude <bits| U |+>^n. When compile_programs is set (the default)
  /// this routes through query::AmplitudeProgram — planned via the shared
  /// planner and plan cache, so repeated calls on the same circuit
  /// structure never replan; callers replaying many (theta, bits) pairs
  /// should hold an AmplitudeProgram directly and skip the per-call
  /// compile. compile_programs=false keeps the legacy one-shot path.
  [[nodiscard]] cplx amplitude(const circuit::Circuit& circuit,
                               std::span<const double> theta,
                               std::span<const int> bits) const;

  /// Contraction width the configured ordering achieves on the <ZZ> network
  /// (diagnostic; used by the ordering ablation).
  [[nodiscard]] std::size_t zz_width(const circuit::Circuit& circuit,
                                     std::span<const double> theta,
                                     std::size_t u, std::size_t v) const;

  [[nodiscard]] const QTensorOptions& options() const { return options_; }

 private:
  [[nodiscard]] std::vector<VarId> make_order(
      const TensorNetwork& network) const;

  QTensorOptions options_;
  std::shared_ptr<const Backend> backend_;
};

}  // namespace qarch::qtensor
