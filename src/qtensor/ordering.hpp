// Heuristic contraction-order (variable elimination order) optimizers.
//
// QTensor minimizes the contraction width of the elimination sequence using
// heuristic ordering algorithms over the network's *line graph* — the
// interaction graph whose nodes are wire variables, with an edge between two
// variables that co-occur in some tensor. We provide the classic trio plus a
// priority-queue contractor:
//
//   * greedy min-degree — eliminate the variable with fewest neighbours
//   * greedy min-fill   — eliminate the variable adding fewest fill edges
//   * priority          — lazy priority-queue contraction (see order_priority)
//   * random            — uniformly random order (ablation baseline)
//
// Width of an order = max rank of any intermediate bucket-product tensor;
// contraction cost is exponential in it, so the optimizers matter (the
// `abl_ordering` bench quantifies this).
//
// Every optimizer has two entry points: the original TensorNetwork overload
// (builds a fresh LineGraph) and a `const LineGraph&` overload that COPIES a
// caller-provided base graph. The planner builds the line graph once and
// hands the same base to every competing heuristic, so competing N
// heuristics no longer pays N network traversals.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "qtensor/network.hpp"

namespace qarch::qtensor {

/// Adjacency-set interaction graph ("line graph") of a tensor network.
class LineGraph {
 public:
  explicit LineGraph(const TensorNetwork& network);

  /// Number of variables (graph nodes), including isolated ones.
  [[nodiscard]] std::size_t num_vars() const { return adj_.size(); }

  /// Current neighbour set of variable v.
  [[nodiscard]] const std::vector<VarId>& neighbors(VarId v) const;

  /// Variables present in the network (isolated nodes excluded).
  [[nodiscard]] std::vector<VarId> active_vars() const;

  /// Eliminates v: connects its neighbours pairwise (fill-in), removes v.
  void eliminate(VarId v);

  /// Number of fill edges elimination of v would create right now.
  [[nodiscard]] std::size_t fill_cost(VarId v) const;

  /// Degree of v.
  [[nodiscard]] std::size_t degree(VarId v) const;

  /// True if the variable still exists in the graph.
  [[nodiscard]] bool contains(VarId v) const;

 private:
  void connect(VarId a, VarId b);
  std::vector<std::vector<VarId>> adj_;
  std::vector<bool> present_;
};

/// Elimination order minimizing degree greedily.
std::vector<VarId> order_greedy_degree(const TensorNetwork& network);
std::vector<VarId> order_greedy_degree(const LineGraph& base);

/// Elimination order minimizing fill-in greedily.
std::vector<VarId> order_greedy_fill(const TensorNetwork& network);
std::vector<VarId> order_greedy_fill(const LineGraph& base);

/// Priority-queue contraction order (the OSRM GraphContractor pattern): a
/// binary min-heap keyed by a combined (degree, fill) score with LAZY
/// re-evaluation — eliminating a variable does not touch its neighbours'
/// queued entries; instead each popped entry is re-scored, and a node whose
/// fresh score fell behind the next queue head is re-inserted rather than
/// contracted. This does the work of greedy min-fill at a fraction of the
/// rescoring cost on large networks, and each call owns its heap and scratch
/// so competitors can run on parallel threads without sharing state.
std::vector<VarId> order_priority(const TensorNetwork& network);
std::vector<VarId> order_priority(const LineGraph& base);

/// Uniformly random elimination order.
std::vector<VarId> order_random(const TensorNetwork& network, Rng& rng);
std::vector<VarId> order_random(const LineGraph& base, Rng& rng);

/// Best of `restarts` random orders by width (QTensor's random-restart mode).
std::vector<VarId> order_random_restart(const TensorNetwork& network,
                                        std::size_t restarts, Rng& rng);

/// Contraction width of eliminating `order` on `network`: the maximum rank
/// of any intermediate bucket-product tensor (before summation).
std::size_t contraction_width(const TensorNetwork& network,
                              const std::vector<VarId>& order);

}  // namespace qarch::qtensor
