// Contraction backends.
//
// QTensor supports multiple tensor-contraction backends (NumPy on CPUs in
// the paper; GPU backends as future work). We reproduce that seam: the
// bucket-elimination contractor delegates its hot kernel — computing the
// element-wise product of a bucket's tensors over the union of their labels —
// to a Backend. Two implementations are provided:
//
//   * SerialCpuBackend   — plain loops (the paper's NumPy-on-CPU analogue)
//   * ParallelCpuBackend — multithreaded over output blocks; this is our
//                          stand-in "device" backend for the paper's GPU
//                          integration (same interface, more lanes)
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "qtensor/tensor.hpp"

namespace qarch::qtensor {

/// Abstract contraction kernel provider.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Computes the element-wise product of `factors` broadcast over the union
  /// label set `out_labels` (every factor's labels must be a subset).
  [[nodiscard]] Tensor product(const std::vector<const Tensor*>& factors,
                               const std::vector<VarId>& out_labels) const;

  /// Same product written into caller-provided storage of size
  /// 2^|out_labels| — the allocation-free kernel variant.
  virtual void product_into(const std::vector<const Tensor*>& factors,
                            const std::vector<VarId>& out_labels,
                            cplx* out) const = 0;

  /// Fused bucket-elimination step: the product over `out_labels` — whose
  /// FIRST label is the eliminated variable — summed over that variable
  /// directly into `out` (size 2^(|out_labels|-1)). The compiled contraction
  /// plans replay this kernel; fusing the fold skips materializing the full
  /// product (one write of half the entries instead of write+read+write).
  virtual void product_sum_into(const std::vector<const Tensor*>& factors,
                                const std::vector<VarId>& out_labels,
                                cplx* out) const = 0;

  /// Backend display name.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Single-threaded reference backend.
class SerialCpuBackend final : public Backend {
 public:
  void product_into(const std::vector<const Tensor*>& factors,
                    const std::vector<VarId>& out_labels,
                    cplx* out) const override;
  void product_sum_into(const std::vector<const Tensor*>& factors,
                        const std::vector<VarId>& out_labels,
                        cplx* out) const override;
  [[nodiscard]] std::string name() const override { return "serial-cpu"; }
};

/// Multithreaded backend: output range split across `workers` threads.
/// Small products (below `parallel_threshold_rank`) fall back to serial.
class ParallelCpuBackend final : public Backend {
 public:
  explicit ParallelCpuBackend(std::size_t workers = 0,
                              std::size_t parallel_threshold_rank = 12);
  void product_into(const std::vector<const Tensor*>& factors,
                    const std::vector<VarId>& out_labels,
                    cplx* out) const override;
  void product_sum_into(const std::vector<const Tensor*>& factors,
                        const std::vector<VarId>& out_labels,
                        cplx* out) const override;
  [[nodiscard]] std::string name() const override { return "parallel-cpu"; }

  [[nodiscard]] std::size_t workers() const { return workers_; }

 private:
  std::size_t workers_;
  std::size_t parallel_threshold_rank_;
};

/// Factory: "serial" or "parallel[:N]".
std::unique_ptr<Backend> make_backend(const std::string& spec);

}  // namespace qarch::qtensor
