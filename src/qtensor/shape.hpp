// Canonical lightcone shapes: which <Z_u Z_v> terms share a contraction.
//
// On regular (and many irregular) graphs most edges are *symmetric*: the
// causal cone of edge (u, v) is isomorphic — same gates, same parameter
// expressions, same wiring — to the cone of many other edges, so their
// <Z_u Z_v> expectations are literally equal for every theta and one
// compiled ContractionProgram can serve all of them. This header computes
//
//   * a canonical SHAPE KEY per edge lightcone (a Weisfeiler–Leman style
//     hash over per-qubit TIERED gate-event sequences), equal for
//     isomorphic cones, and
//   * an EXACT isomorphism check (backtracking over WL color classes) that
//     certifies two cones really are relabelings of each other.
//
// Keys group candidates cheaply; the exact check guards against hash/WL
// collisions before two edges are allowed to share a program, so dedup is
// sound: a shared program is only ever replayed for edges whose expectation
// value provably equals the representative's.
//
// Two normalizations make symmetric edges actually coincide despite the
// arbitrary global gate order the circuit builder emits:
//   * CANCELLATION STRIP — the syntactic backward cone keeps order-dependent
//     junk gates that cancel against their adjoints inside U† (Z_u Z_v) U;
//     a support/diagonality sweep removes them first (see
//     stripped_cone_gates in shape.cpp for the commutation argument), and
//   * COMMUTING TIERS — consecutive diagonal events on a wire mutually
//     commute, so within a wire they form unordered tiers rather than a
//     strict sequence; cost-layer RZZ gates emitted in edge-list order
//     land in one tier regardless of that order.
//
// The shape is computed from the lightcone CIRCUIT, not from the problem
// graph: mixer layers may entangle qubits outside the edge's graph
// neighbourhood (the two-qubit mixer gates run over a qubit-index ring), so
// graph-local heuristics would mis-group edges the circuit distinguishes.
#pragma once

#include <cstddef>
#include <string>

#include "circuit/circuit.hpp"

namespace qarch::qtensor {

/// Canonical shape of one edge lightcone.
struct LightconeShape {
  std::string key;           ///< canonical hash key (equal => likely isomorphic)
  std::size_t qubits = 0;    ///< active qubits in the cone
  std::size_t gates = 0;     ///< gates in the cone
};

/// Shape of the lightcone of <Z_u Z_v> under `circuit` (cancellation-
/// stripped; `qubits`/`gates` count the surviving cone). Isomorphic cones
/// (in the lightcone_equivalent sense) always produce equal keys; unequal
/// cones produce different keys except for rare hash collisions, which the
/// exact check below screens out.
LightconeShape lightcone_shape(const circuit::Circuit& circuit, std::size_t u,
                               std::size_t v);

/// True iff the (stripped) lightcones of (u1, v1) and (u2, v2) are
/// relabelings of each other: some qubit bijection mapping {u1, v1} onto
/// {u2, v2} carries every gate of one cone — kind, parameter expression,
/// qubit roles, and per-qubit dependency tier — onto the other. Equivalent
/// cones have identical <Z_u Z_v> for every theta (the circuits are linear
/// extensions of isomorphic gate-dependency posets whose incomparable
/// elements commute, and Z_u Z_v is symmetric under swapping u and v).
/// Conservative under search-budget exhaustion: may return false for
/// equivalent cones of pathological symmetry, never true for inequivalent
/// ones.
bool lightcone_equivalent(const circuit::Circuit& circuit, std::size_t u1,
                          std::size_t v1, std::size_t u2, std::size_t v2);

}  // namespace qarch::qtensor
