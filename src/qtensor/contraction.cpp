#include "qtensor/contraction.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "query/program.hpp"

namespace qarch::qtensor {

ContractionResult contract(const TensorNetwork& network,
                           const std::vector<VarId>& order,
                           const Backend& backend) {
  {
    // Every variable of the network must be summed exactly once.
    std::set<VarId> in_order(order.begin(), order.end());
    QARCH_REQUIRE(in_order.size() == order.size(),
                  "elimination order repeats a variable");
    for (VarId v : network.variables())
      QARCH_REQUIRE(in_order.count(v) > 0,
                    "elimination order misses a network variable");
  }

  std::vector<Tensor> active = network.tensors;
  ContractionResult result;

  for (VarId v : order) {
    // Bucket = every active tensor carrying v.
    std::vector<const Tensor*> bucket;
    std::vector<Tensor> rest;
    rest.reserve(active.size());
    std::vector<Tensor> bucket_storage;
    for (Tensor& t : active) {
      if (t.has_label(v))
        bucket_storage.push_back(std::move(t));
      else
        rest.push_back(std::move(t));
    }
    if (bucket_storage.empty()) continue;
    bucket.reserve(bucket_storage.size());
    for (const Tensor& t : bucket_storage) bucket.push_back(&t);

    // Union of bucket labels, v placed first for cheap summation afterwards.
    std::set<VarId> union_set;
    for (const Tensor* t : bucket)
      union_set.insert(t->labels().begin(), t->labels().end());
    std::vector<VarId> out_labels;
    out_labels.reserve(union_set.size());
    out_labels.push_back(v);
    for (VarId w : union_set)
      if (w != v) out_labels.push_back(w);

    result.width = std::max(result.width, out_labels.size());
    Tensor product = backend.product(bucket, out_labels);
    rest.push_back(product.sum_over(v));
    active = std::move(rest);
  }

  // All variables eliminated: remaining tensors are scalars.
  cplx value{1.0, 0.0};
  for (const Tensor& t : active) {
    QARCH_CHECK(t.rank() == 0, "non-scalar tensor left after contraction");
    value *= t.scalar_value();
  }
  result.value = value;
  return result;
}

OrderingAlgo ordering_from_name(const std::string& name) {
  if (name == "greedy-degree") return OrderingAlgo::GreedyDegree;
  if (name == "greedy-fill") return OrderingAlgo::GreedyFill;
  if (name == "random") return OrderingAlgo::Random;
  if (name == "random-restart") return OrderingAlgo::RandomRestart;
  throw InvalidArgument("unknown ordering algorithm: " + name);
}

QTensorSimulator::QTensorSimulator(QTensorOptions options)
    : options_(std::move(options)),
      backend_(make_backend(options_.backend)) {}

std::vector<VarId> QTensorSimulator::make_order(
    const TensorNetwork& network) const {
  switch (options_.ordering) {
    case OrderingAlgo::GreedyDegree:
      return order_greedy_degree(network);
    case OrderingAlgo::GreedyFill:
      return order_greedy_fill(network);
    case OrderingAlgo::Random: {
      Rng rng(options_.ordering_seed);
      return order_random(network, rng);
    }
    case OrderingAlgo::RandomRestart: {
      Rng rng(options_.ordering_seed);
      return order_random_restart(network, options_.random_restarts, rng);
    }
  }
  throw InternalError("unhandled ordering algorithm");
}

double QTensorSimulator::expectation_zz(const circuit::Circuit& circuit,
                                        std::span<const double> theta,
                                        std::size_t u, std::size_t v) const {
  const TensorNetwork net =
      expectation_zz_network(circuit, theta, u, v, options_.network);
  const ContractionResult r = contract(net, make_order(net), *backend_);
  QARCH_CHECK(std::abs(r.value.imag()) < 1e-8,
              "Hermitian expectation has a large imaginary part");
  return r.value.real();
}

cplx QTensorSimulator::amplitude(const circuit::Circuit& circuit,
                                 std::span<const double> theta,
                                 std::span<const int> bits) const {
  if (options_.compile_programs) {
    const query::AmplitudeProgram program(circuit,
                                          query::query_options(options_));
    return program.amplitude(theta, bits, *backend_);
  }
  const TensorNetwork net =
      amplitude_network(circuit, theta, bits, options_.network);
  return contract(net, make_order(net), *backend_).value;
}

std::size_t QTensorSimulator::zz_width(const circuit::Circuit& circuit,
                                       std::span<const double> theta,
                                       std::size_t u, std::size_t v) const {
  const TensorNetwork net =
      expectation_zz_network(circuit, theta, u, v, options_.network);
  return contraction_width(net, make_order(net));
}

}  // namespace qarch::qtensor
