#include "qtensor/ordering.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "common/error.hpp"

namespace qarch::qtensor {

LineGraph::LineGraph(const TensorNetwork& network)
    : adj_(network.num_vars), present_(network.num_vars, false) {
  for (const Tensor& t : network.tensors) {
    const auto& ls = t.labels();
    for (std::size_t a = 0; a < ls.size(); ++a) {
      QARCH_REQUIRE(ls[a] < adj_.size(), "variable id out of range");
      present_[ls[a]] = true;
      for (std::size_t b = a + 1; b < ls.size(); ++b) connect(ls[a], ls[b]);
    }
  }
}

void LineGraph::connect(VarId a, VarId b) {
  if (a == b) return;
  if (std::find(adj_[a].begin(), adj_[a].end(), b) == adj_[a].end()) {
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
}

const std::vector<VarId>& LineGraph::neighbors(VarId v) const {
  QARCH_REQUIRE(v < adj_.size() && present_[v], "variable not in graph");
  return adj_[v];
}

std::vector<VarId> LineGraph::active_vars() const {
  std::vector<VarId> vars;
  for (VarId v = 0; v < present_.size(); ++v)
    if (present_[v]) vars.push_back(v);
  return vars;
}

void LineGraph::eliminate(VarId v) {
  QARCH_REQUIRE(v < adj_.size() && present_[v], "variable not in graph");
  const std::vector<VarId> nbrs = adj_[v];
  for (std::size_t a = 0; a < nbrs.size(); ++a)
    for (std::size_t b = a + 1; b < nbrs.size(); ++b)
      connect(nbrs[a], nbrs[b]);
  for (VarId w : nbrs) {
    auto& lst = adj_[w];
    lst.erase(std::remove(lst.begin(), lst.end(), v), lst.end());
  }
  adj_[v].clear();
  present_[v] = false;
}

std::size_t LineGraph::fill_cost(VarId v) const {
  QARCH_REQUIRE(v < adj_.size() && present_[v], "variable not in graph");
  const auto& nbrs = adj_[v];
  std::size_t fill = 0;
  for (std::size_t a = 0; a < nbrs.size(); ++a)
    for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
      const auto& la = adj_[nbrs[a]];
      if (std::find(la.begin(), la.end(), nbrs[b]) == la.end()) ++fill;
    }
  return fill;
}

std::size_t LineGraph::degree(VarId v) const {
  QARCH_REQUIRE(v < adj_.size() && present_[v], "variable not in graph");
  return adj_[v].size();
}

bool LineGraph::contains(VarId v) const {
  return v < present_.size() && present_[v];
}

namespace {

template <typename Score>
std::vector<VarId> greedy_order(const TensorNetwork& network, Score score) {
  LineGraph g(network);
  std::vector<VarId> order;
  std::vector<VarId> vars = g.active_vars();
  order.reserve(vars.size());
  while (true) {
    VarId best = 0;
    std::size_t best_score = std::numeric_limits<std::size_t>::max();
    bool found = false;
    for (VarId v : vars) {
      if (!g.contains(v)) continue;
      const std::size_t s = score(g, v);
      // Tie-break on the variable id for determinism.
      if (!found || s < best_score || (s == best_score && v < best)) {
        best = v;
        best_score = s;
        found = true;
      }
    }
    if (!found) break;
    order.push_back(best);
    g.eliminate(best);
  }
  return order;
}

}  // namespace

std::vector<VarId> order_greedy_degree(const TensorNetwork& network) {
  return greedy_order(network,
                      [](const LineGraph& g, VarId v) { return g.degree(v); });
}

std::vector<VarId> order_greedy_fill(const TensorNetwork& network) {
  return greedy_order(
      network, [](const LineGraph& g, VarId v) { return g.fill_cost(v); });
}

std::vector<VarId> order_random(const TensorNetwork& network, Rng& rng) {
  LineGraph g(network);
  std::vector<VarId> vars = g.active_vars();
  rng.shuffle(vars);
  return vars;
}

std::vector<VarId> order_random_restart(const TensorNetwork& network,
                                        std::size_t restarts, Rng& rng) {
  QARCH_REQUIRE(restarts >= 1, "need at least one restart");
  std::vector<VarId> best;
  std::size_t best_width = std::numeric_limits<std::size_t>::max();
  for (std::size_t r = 0; r < restarts; ++r) {
    std::vector<VarId> order = order_random(network, rng);
    const std::size_t w = contraction_width(network, order);
    if (w < best_width) {
      best_width = w;
      best = std::move(order);
    }
  }
  return best;
}

std::size_t contraction_width(const TensorNetwork& network,
                              const std::vector<VarId>& order) {
  // Symbolic bucket elimination over label sets only.
  std::vector<std::set<VarId>> tensors;
  tensors.reserve(network.tensors.size());
  for (const Tensor& t : network.tensors)
    tensors.emplace_back(t.labels().begin(), t.labels().end());

  std::size_t width = 0;
  for (VarId v : order) {
    std::set<VarId> merged;
    std::vector<std::set<VarId>> rest;
    rest.reserve(tensors.size());
    for (auto& s : tensors) {
      if (s.count(v) > 0)
        merged.insert(s.begin(), s.end());
      else
        rest.push_back(std::move(s));
    }
    if (merged.empty()) continue;
    width = std::max(width, merged.size());
    merged.erase(v);
    rest.push_back(std::move(merged));
    tensors = std::move(rest);
  }
  return width;
}

}  // namespace qarch::qtensor
