#include "qtensor/ordering.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <utility>

#include "common/error.hpp"

namespace qarch::qtensor {

LineGraph::LineGraph(const TensorNetwork& network)
    : adj_(network.num_vars), present_(network.num_vars, false) {
  for (const Tensor& t : network.tensors) {
    const auto& ls = t.labels();
    for (std::size_t a = 0; a < ls.size(); ++a) {
      QARCH_REQUIRE(ls[a] < adj_.size(), "variable id out of range");
      present_[ls[a]] = true;
      for (std::size_t b = a + 1; b < ls.size(); ++b) connect(ls[a], ls[b]);
    }
  }
}

void LineGraph::connect(VarId a, VarId b) {
  if (a == b) return;
  if (std::find(adj_[a].begin(), adj_[a].end(), b) == adj_[a].end()) {
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
}

const std::vector<VarId>& LineGraph::neighbors(VarId v) const {
  QARCH_REQUIRE(v < adj_.size() && present_[v], "variable not in graph");
  return adj_[v];
}

std::vector<VarId> LineGraph::active_vars() const {
  std::vector<VarId> vars;
  for (VarId v = 0; v < present_.size(); ++v)
    if (present_[v]) vars.push_back(v);
  return vars;
}

void LineGraph::eliminate(VarId v) {
  QARCH_REQUIRE(v < adj_.size() && present_[v], "variable not in graph");
  const std::vector<VarId> nbrs = adj_[v];
  for (std::size_t a = 0; a < nbrs.size(); ++a)
    for (std::size_t b = a + 1; b < nbrs.size(); ++b)
      connect(nbrs[a], nbrs[b]);
  for (VarId w : nbrs) {
    auto& lst = adj_[w];
    lst.erase(std::remove(lst.begin(), lst.end(), v), lst.end());
  }
  adj_[v].clear();
  present_[v] = false;
}

std::size_t LineGraph::fill_cost(VarId v) const {
  QARCH_REQUIRE(v < adj_.size() && present_[v], "variable not in graph");
  const auto& nbrs = adj_[v];
  std::size_t fill = 0;
  for (std::size_t a = 0; a < nbrs.size(); ++a)
    for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
      const auto& la = adj_[nbrs[a]];
      if (std::find(la.begin(), la.end(), nbrs[b]) == la.end()) ++fill;
    }
  return fill;
}

std::size_t LineGraph::degree(VarId v) const {
  QARCH_REQUIRE(v < adj_.size() && present_[v], "variable not in graph");
  return adj_[v].size();
}

bool LineGraph::contains(VarId v) const {
  return v < present_.size() && present_[v];
}

namespace {

template <typename Score>
std::vector<VarId> greedy_order(const LineGraph& base, Score score) {
  LineGraph g = base;  // each run mutates a private copy
  std::vector<VarId> order;
  std::vector<VarId> vars = g.active_vars();
  order.reserve(vars.size());
  while (true) {
    VarId best = 0;
    std::size_t best_score = std::numeric_limits<std::size_t>::max();
    bool found = false;
    for (VarId v : vars) {
      if (!g.contains(v)) continue;
      const std::size_t s = score(g, v);
      // Tie-break on the variable id for determinism.
      if (!found || s < best_score || (s == best_score && v < best)) {
        best = v;
        best_score = s;
        found = true;
      }
    }
    if (!found) break;
    order.push_back(best);
    g.eliminate(best);
  }
  return order;
}

// Combined contraction priority: degree dominates (it bounds the rank of the
// bucket product this elimination materializes), fill breaks ties (fewer
// fill edges keeps the residual graph sparse for later picks). Packed into
// one word so heap entries stay POD.
std::uint64_t priority_score(const LineGraph& g, VarId v) {
  const std::uint64_t deg = g.degree(v);
  const std::uint64_t fill =
      std::min<std::size_t>(g.fill_cost(v), (1u << 24) - 1);
  return (deg << 24) | fill;
}

}  // namespace

std::vector<VarId> order_greedy_degree(const TensorNetwork& network) {
  return order_greedy_degree(LineGraph(network));
}

std::vector<VarId> order_greedy_degree(const LineGraph& base) {
  return greedy_order(base,
                      [](const LineGraph& g, VarId v) { return g.degree(v); });
}

std::vector<VarId> order_greedy_fill(const TensorNetwork& network) {
  return order_greedy_fill(LineGraph(network));
}

std::vector<VarId> order_greedy_fill(const LineGraph& base) {
  return greedy_order(
      base, [](const LineGraph& g, VarId v) { return g.fill_cost(v); });
}

std::vector<VarId> order_priority(const TensorNetwork& network) {
  return order_priority(LineGraph(network));
}

std::vector<VarId> order_priority(const LineGraph& base) {
  LineGraph g = base;  // private working copy: per-call heap AND scratch
  // Min-heap of (score, var). Entries are never updated in place; they go
  // stale as neighbouring eliminations change degrees and fills.
  using Entry = std::pair<std::uint64_t, VarId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<VarId> order;
  for (VarId v : g.active_vars()) heap.push({priority_score(g, v), v});
  order.reserve(heap.size());
  while (!heap.empty()) {
    const auto [queued, v] = heap.top();
    heap.pop();
    if (!g.contains(v)) continue;  // duplicate of an eliminated node
    // Lazy re-evaluation: rescore on pop. If the node got WORSE than the
    // next queue head since it was pushed, re-insert with the fresh score
    // and try the head instead — the OSRM "is independent?" retry.
    const std::uint64_t fresh = priority_score(g, v);
    if (fresh > queued && !heap.empty() && fresh > heap.top().first) {
      heap.push({fresh, v});
      continue;
    }
    order.push_back(v);
    g.eliminate(v);
  }
  return order;
}

std::vector<VarId> order_random(const TensorNetwork& network, Rng& rng) {
  return order_random(LineGraph(network), rng);
}

std::vector<VarId> order_random(const LineGraph& base, Rng& rng) {
  std::vector<VarId> vars = base.active_vars();
  rng.shuffle(vars);
  return vars;
}

std::vector<VarId> order_random_restart(const TensorNetwork& network,
                                        std::size_t restarts, Rng& rng) {
  QARCH_REQUIRE(restarts >= 1, "need at least one restart");
  std::vector<VarId> best;
  std::size_t best_width = std::numeric_limits<std::size_t>::max();
  for (std::size_t r = 0; r < restarts; ++r) {
    std::vector<VarId> order = order_random(network, rng);
    const std::size_t w = contraction_width(network, order);
    if (w < best_width) {
      best_width = w;
      best = std::move(order);
    }
  }
  return best;
}

std::size_t contraction_width(const TensorNetwork& network,
                              const std::vector<VarId>& order) {
  // Symbolic bucket elimination over label sets only.
  std::vector<std::set<VarId>> tensors;
  tensors.reserve(network.tensors.size());
  for (const Tensor& t : network.tensors)
    tensors.emplace_back(t.labels().begin(), t.labels().end());

  std::size_t width = 0;
  for (VarId v : order) {
    std::set<VarId> merged;
    std::vector<std::set<VarId>> rest;
    rest.reserve(tensors.size());
    for (auto& s : tensors) {
      if (s.count(v) > 0)
        merged.insert(s.begin(), s.end());
      else
        rest.push_back(std::move(s));
    }
    if (merged.empty()) continue;
    width = std::max(width, merged.size());
    merged.erase(v);
    rest.push_back(std::move(merged));
    tensors = std::move(rest);
  }
  return width;
}

}  // namespace qarch::qtensor
