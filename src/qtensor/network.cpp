#include "qtensor/network.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace qarch::qtensor {

using circuit::Gate;
using circuit::GateKind;

namespace {
std::atomic<std::uint64_t> g_network_build_count{0};
}  // namespace

std::uint64_t network_build_count() {
  return g_network_build_count.load(std::memory_order_relaxed);
}

void reset_network_build_count() {
  g_network_build_count.store(0, std::memory_order_relaxed);
}

std::size_t gate_tensor_data(const Gate& g, std::span<const double> theta,
                             bool diagonal, std::span<cplx> out) {
  const linalg::Matrix m = g.matrix(theta);
  if (g.arity() == 1) {
    if (diagonal) {
      QARCH_REQUIRE(out.size() >= 2, "gate_tensor_data: buffer too small");
      out[0] = m(0, 0);
      out[1] = m(1, 1);
      return 2;
    }
    QARCH_REQUIRE(out.size() >= 4, "gate_tensor_data: buffer too small");
    out[0] = m(0, 0);
    out[1] = m(0, 1);
    out[2] = m(1, 0);
    out[3] = m(1, 1);
    return 4;
  }
  if (diagonal) {
    QARCH_REQUIRE(out.size() >= 4, "gate_tensor_data: buffer too small");
    for (std::size_t b = 0; b < 4; ++b) out[b] = m(b, b);
    return 4;
  }
  QARCH_REQUIRE(out.size() >= 16, "gate_tensor_data: buffer too small");
  for (std::size_t o = 0; o < 4; ++o)
    for (std::size_t i = 0; i < 4; ++i) out[o * 4 + i] = m(o, i);
  return 16;
}

std::vector<VarId> TensorNetwork::variables() const {
  std::vector<VarId> vars;
  for (const Tensor& t : tensors)
    vars.insert(vars.end(), t.labels().begin(), t.labels().end());
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::size_t TensorNetwork::total_entries() const {
  std::size_t s = 0;
  for (const Tensor& t : tensors) s += t.size();
  return s;
}

circuit::Circuit lightcone_circuit(const circuit::Circuit& circuit,
                                   const std::vector<std::size_t>& targets,
                                   std::set<std::size_t>* active_out) {
  std::set<std::size_t> active(targets.begin(), targets.end());
  const auto& gates = circuit.gates();
  std::vector<bool> keep(gates.size(), false);
  for (std::size_t i = gates.size(); i-- > 0;) {
    const Gate& g = gates[i];
    const bool touches = active.count(g.q0) > 0 ||
                         (g.arity() == 2 && active.count(g.q1) > 0);
    if (touches) {
      keep[i] = true;
      active.insert(g.q0);
      if (g.arity() == 2) active.insert(g.q1);
    }
  }
  circuit::Circuit out(circuit.num_qubits(), circuit.num_params());
  for (std::size_t i = 0; i < gates.size(); ++i)
    if (keep[i]) out.append(gates[i]);
  if (active_out != nullptr) *active_out = std::move(active);
  return out;
}

namespace {

/// Incremental network builder tracking the current wire variable per qubit.
class NetworkBuilder {
 public:
  NetworkBuilder(const std::vector<std::size_t>& qubits, bool diagonal_opt,
                 std::vector<GateBinding>* bindings = nullptr)
      : diagonal_opt_(diagonal_opt), bindings_(bindings) {
    for (std::size_t q : qubits) current_var_[q] = fresh();
  }

  /// Adds the state cap |+> (or <+|) on qubit q's current variable.
  void add_plus_cap(std::size_t q) {
    const double amp = 1.0 / std::sqrt(2.0);
    net_.tensors.emplace_back(std::vector<VarId>{var(q)},
                              std::vector<cplx>{amp, amp});
  }

  /// Adds the basis cap <bit| on qubit q's current variable.
  void add_basis_cap(std::size_t q, int bit) {
    std::vector<cplx> data = bit == 0 ? std::vector<cplx>{1.0, 0.0}
                                      : std::vector<cplx>{0.0, 1.0};
    net_.tensors.emplace_back(std::vector<VarId>{var(q)}, std::move(data));
  }

  /// Adds a rank-1 diagonal factor with arbitrary data on qubit q's current
  /// wire (observables, projectors; never creates variables).
  void add_diagonal(std::size_t q, std::vector<cplx> data) {
    net_.tensors.emplace_back(std::vector<VarId>{var(q)}, std::move(data));
  }

  /// Adds an open-index copy tensor δ(o, w) on qubit q's current wire w.
  /// The wire continues (the tensor is diagonal in w); the fresh index o
  /// stays open and indexes the diagonal of the reduced density matrix —
  /// i.e. the outcome probability p(o) once everything else contracts.
  VarId add_open_projector(std::size_t q) {
    const VarId open = fresh();
    net_.tensors.emplace_back(std::vector<VarId>{open, var(q)},
                              std::vector<cplx>{1.0, 0.0, 0.0, 1.0});
    return open;
  }

  /// Cuts qubit q's wire at the current point: the existing (ket-side)
  /// variable is left open and returned as `row`; a fresh variable becomes
  /// the qubit's current wire for the bra side and is returned as `col`.
  void cut_wire(std::size_t q, VarId* row, VarId* col) {
    *row = var(q);
    *col = fresh();
    current_var_[q] = *col;
  }

  /// Tensors appended so far — the index the NEXT add_* call will occupy
  /// (used to record CapBindings).
  [[nodiscard]] std::size_t tensor_count() const {
    return net_.tensors.size();
  }

  /// Adds a Pauli-Z observable factor (diagonal, never creates variables).
  void add_z_observable(std::size_t q) {
    net_.tensors.emplace_back(std::vector<VarId>{var(q)},
                              std::vector<cplx>{1.0, -1.0});
  }

  /// Appends one gate tensor, threading wire variables. Data layout is
  /// delegated to gate_tensor_data so the per-theta rebind path writes the
  /// exact same bytes the builder does.
  void add_gate(const Gate& g, std::span<const double> theta) {
    const bool diagonal = diagonal_opt_ && circuit::is_diagonal(g.kind);
    std::vector<VarId> labels;
    if (g.arity() == 1) {
      if (diagonal) {
        labels = {var(g.q0)};
      } else {
        const VarId in = var(g.q0), out = fresh();
        current_var_[g.q0] = out;
        labels = {out, in};  // data[o*2+i] = m(o, i)
      }
    } else if (diagonal) {
      // Rank-2 diagonal tensor over the two current wire variables.
      labels = {var(g.q0), var(g.q1)};
    } else {
      const VarId in0 = var(g.q0), in1 = var(g.q1);
      const VarId out0 = fresh(), out1 = fresh();
      current_var_[g.q0] = out0;
      current_var_[g.q1] = out1;
      // labels [out0, out1, in0, in1]; data[((o0*2+o1)*2+i0)*2+i1]
      labels = {out0, out1, in0, in1};
    }
    std::vector<cplx> data(std::size_t{1} << labels.size());
    gate_tensor_data(g, theta, diagonal, data);
    if (bindings_ != nullptr &&
        g.param.kind == circuit::ParamExpr::Kind::Symbol)
      bindings_->push_back({net_.tensors.size(), g, diagonal});
    net_.tensors.emplace_back(std::move(labels), std::move(data));
  }

  [[nodiscard]] VarId var(std::size_t q) const {
    const auto it = current_var_.find(q);
    QARCH_CHECK(it != current_var_.end(), "qubit has no wire variable");
    return it->second;
  }

  TensorNetwork take() {
    net_.num_vars = next_var_;
    return std::move(net_);
  }

 private:
  VarId fresh() { return next_var_++; }

  bool diagonal_opt_;
  std::vector<GateBinding>* bindings_;
  std::map<std::size_t, VarId> current_var_;
  VarId next_var_ = 0;
  TensorNetwork net_;
};

}  // namespace

TensorNetwork expectation_zz_network(const circuit::Circuit& circuit,
                                     std::span<const double> theta,
                                     std::size_t u, std::size_t v,
                                     const NetworkOptions& options,
                                     std::vector<GateBinding>* bindings) {
  QARCH_REQUIRE(u < circuit.num_qubits() && v < circuit.num_qubits() && u != v,
                "bad ZZ pair");
  g_network_build_count.fetch_add(1, std::memory_order_relaxed);
  circuit::Circuit effective = circuit;
  std::set<std::size_t> active;
  if (options.lightcone) {
    effective = lightcone_circuit(circuit, {u, v}, &active);
  } else {
    for (std::size_t q = 0; q < circuit.num_qubits(); ++q) active.insert(q);
  }
  // Qubits outside the lightcone contribute <+|+> = 1 and are dropped.
  active.insert(u);
  active.insert(v);
  std::vector<std::size_t> qubits(active.begin(), active.end());

  NetworkBuilder b(qubits, options.diagonal_optimization, bindings);
  for (std::size_t q : qubits) b.add_plus_cap(q);
  for (const Gate& g : effective.gates()) b.add_gate(g, theta);
  b.add_z_observable(u);
  b.add_z_observable(v);
  const circuit::Circuit adjoint = effective.inverse();
  for (const Gate& g : adjoint.gates()) b.add_gate(g, theta);
  for (std::size_t q : qubits) b.add_plus_cap(q);
  return b.take();
}

TensorNetwork amplitude_network(const circuit::Circuit& circuit,
                                std::span<const double> theta,
                                std::span<const int> bits,
                                const NetworkOptions& options,
                                std::vector<GateBinding>* bindings) {
  QARCH_REQUIRE(bits.size() == circuit.num_qubits(),
                "amplitude: bit string length mismatch");
  g_network_build_count.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::size_t> qubits(circuit.num_qubits());
  for (std::size_t q = 0; q < qubits.size(); ++q) qubits[q] = q;

  NetworkBuilder b(qubits, options.diagonal_optimization, bindings);
  for (std::size_t q : qubits) b.add_plus_cap(q);
  for (const Gate& g : circuit.gates()) b.add_gate(g, theta);
  for (std::size_t q : qubits) b.add_basis_cap(q, bits[q]);
  return b.take();
}

TensorNetwork expectation_z_network(const circuit::Circuit& circuit,
                                    std::span<const double> theta,
                                    std::size_t q,
                                    const NetworkOptions& options,
                                    std::vector<GateBinding>* bindings) {
  QARCH_REQUIRE(q < circuit.num_qubits(), "bad Z target");
  g_network_build_count.fetch_add(1, std::memory_order_relaxed);
  circuit::Circuit effective = circuit;
  std::set<std::size_t> active;
  if (options.lightcone) {
    effective = lightcone_circuit(circuit, {q}, &active);
  } else {
    for (std::size_t i = 0; i < circuit.num_qubits(); ++i) active.insert(i);
  }
  active.insert(q);
  std::vector<std::size_t> qubits(active.begin(), active.end());

  NetworkBuilder b(qubits, options.diagonal_optimization, bindings);
  for (std::size_t i : qubits) b.add_plus_cap(i);
  for (const Gate& g : effective.gates()) b.add_gate(g, theta);
  b.add_z_observable(q);
  const circuit::Circuit adjoint = effective.inverse();
  for (const Gate& g : adjoint.gates()) b.add_gate(g, theta);
  for (std::size_t i : qubits) b.add_plus_cap(i);
  return b.take();
}

void cap_tensor_data(int bit, std::span<cplx> out) {
  QARCH_REQUIRE(out.size() >= 2, "cap_tensor_data: buffer too small");
  out[0] = bit == 0 ? 1.0 : 0.0;
  out[1] = bit == 0 ? 0.0 : 1.0;
}

QueryNetwork amplitude_query_network(const circuit::Circuit& circuit,
                                     std::span<const double> theta,
                                     std::span<const std::size_t> open_qubits,
                                     const NetworkOptions& options) {
  for (std::size_t i = 0; i < open_qubits.size(); ++i) {
    QARCH_REQUIRE(open_qubits[i] < circuit.num_qubits(),
                  "open qubit out of range");
    QARCH_REQUIRE(i == 0 || open_qubits[i - 1] < open_qubits[i],
                  "open qubits must be sorted and unique");
  }
  g_network_build_count.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::size_t> qubits(circuit.num_qubits());
  for (std::size_t q = 0; q < qubits.size(); ++q) qubits[q] = q;

  QueryNetwork out;
  NetworkBuilder b(qubits, options.diagonal_optimization, &out.bindings);
  for (std::size_t q : qubits) b.add_plus_cap(q);
  for (const Gate& g : circuit.gates()) b.add_gate(g, theta);
  std::size_t next_open = 0;
  for (std::size_t q : qubits) {
    if (next_open < open_qubits.size() && open_qubits[next_open] == q) {
      out.open_labels.push_back(b.var(q));
      ++next_open;
      continue;
    }
    out.caps.push_back({b.tensor_count(), q});
    b.add_basis_cap(q, 0);
  }
  out.net = b.take();
  return out;
}

QueryNetwork measure_query_network(const circuit::Circuit& circuit,
                                   std::span<const double> theta,
                                   std::span<const WireRole> roles,
                                   const NetworkOptions& options) {
  QARCH_REQUIRE(roles.size() == circuit.num_qubits(),
                "measure_query_network: one role per qubit");
  g_network_build_count.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::size_t> targets;
  for (std::size_t q = 0; q < roles.size(); ++q)
    if (roles[q] != WireRole::Trace) targets.push_back(q);

  circuit::Circuit effective = circuit;
  std::set<std::size_t> active;
  if (options.lightcone) {
    effective = lightcone_circuit(circuit, targets, &active);
  } else {
    for (std::size_t q = 0; q < circuit.num_qubits(); ++q) active.insert(q);
  }
  active.insert(targets.begin(), targets.end());
  std::vector<std::size_t> qubits(active.begin(), active.end());

  QueryNetwork out;
  NetworkBuilder b(qubits, options.diagonal_optimization, &out.bindings);
  for (std::size_t q : qubits) b.add_plus_cap(q);
  for (const Gate& g : effective.gates()) b.add_gate(g, theta);
  // Observable point: per-qubit output treatment, recorded in the
  // documented open-label order (Diagonal, then Cut rows, then Cut cols).
  std::vector<VarId> rows, cols;
  for (std::size_t q : qubits) {
    switch (roles[q]) {
      case WireRole::Trace:
        break;
      case WireRole::Fix: {
        // A diagonal projector has the cap data layout on the live wire;
        // the wire continues into U† (diagonal ⇒ no fresh variable).
        out.caps.push_back({b.tensor_count(), q});
        std::vector<cplx> data(2);
        cap_tensor_data(0, data);
        b.add_diagonal(q, std::move(data));
        break;
      }
      case WireRole::Diagonal:
        out.open_labels.push_back(b.add_open_projector(q));
        break;
      case WireRole::Cut: {
        VarId row = 0, col = 0;
        b.cut_wire(q, &row, &col);
        rows.push_back(row);
        cols.push_back(col);
        break;
      }
    }
  }
  out.open_labels.insert(out.open_labels.end(), rows.begin(), rows.end());
  out.open_labels.insert(out.open_labels.end(), cols.begin(), cols.end());
  const circuit::Circuit adjoint = effective.inverse();
  for (const Gate& g : adjoint.gates()) b.add_gate(g, theta);
  for (std::size_t q : qubits) b.add_plus_cap(q);
  out.net = b.take();
  return out;
}

}  // namespace qarch::qtensor
