#include "qtensor/plan_cache.hpp"

#include <algorithm>

namespace qarch::qtensor {

std::string PlanCache::map_key(const std::string& shape_key,
                               std::uint64_t structure_hash) {
  return shape_key + '\x1f' + std::to_string(structure_hash);
}

std::optional<CachedPlan> PlanCache::find(const std::string& shape_key,
                                          std::uint64_t structure_hash) const {
  LockGuard lock(mutex_);
  const auto it = plans_.find(map_key(shape_key, structure_hash));
  if (it == plans_.end()) return std::nullopt;
  return it->second;
}

void PlanCache::insert(CachedPlan plan) {
  LockGuard lock(mutex_);
  plans_[map_key(plan.shape_key, plan.structure_hash)] = std::move(plan);
}

void PlanCache::merge(std::vector<CachedPlan> plans) {
  LockGuard lock(mutex_);
  for (CachedPlan& p : plans) {
    const std::string key = map_key(p.shape_key, p.structure_hash);
    plans_.emplace(key, std::move(p));  // keep the in-memory entry on clash
  }
}

std::vector<CachedPlan> PlanCache::snapshot() const {
  std::vector<CachedPlan> out;
  {
    LockGuard lock(mutex_);
    out.reserve(plans_.size());
    for (const auto& [key, plan] : plans_) out.push_back(plan);
  }
  std::sort(out.begin(), out.end(),
            [](const CachedPlan& a, const CachedPlan& b) {
              if (a.shape_key != b.shape_key) return a.shape_key < b.shape_key;
              return a.structure_hash < b.structure_hash;
            });
  return out;
}

std::size_t PlanCache::size() const {
  LockGuard lock(mutex_);
  return plans_.size();
}

}  // namespace qarch::qtensor
