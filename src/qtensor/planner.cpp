#include "qtensor/planner.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"

namespace qarch::qtensor {

namespace {

std::atomic<std::size_t> g_planner_invocations{0};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t planner_invocation_count() {
  return g_planner_invocations.load(std::memory_order_relaxed);
}

void reset_planner_invocation_count() {
  g_planner_invocations.store(0, std::memory_order_relaxed);
}

std::uint64_t network_structure_hash(const TensorNetwork& network) {
  // FNV-1a over the label structure. Tensor order matters (it is part of
  // how an order maps onto buckets deterministically), label VALUES matter,
  // tensor data does not.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(network.num_vars);
  mix(network.tensors.size());
  for (const Tensor& t : network.tensors) {
    mix(t.labels().size());
    for (VarId v : t.labels()) mix(v);
  }
  return h;
}

CostModel::CostModel(const TensorNetwork& network)
    : num_vars_(network.num_vars),
      words_((network.num_vars + 63) / 64),
      num_tensors_(network.tensors.size()) {
  bits_.assign(num_tensors_ * words_, 0);
  for (std::size_t t = 0; t < num_tensors_; ++t) {
    std::uint64_t* row = bits_.data() + t * words_;
    for (VarId v : network.tensors[t].labels()) {
      QARCH_REQUIRE(v < num_vars_, "variable id out of range");
      row[v / 64] |= std::uint64_t{1} << (v % 64);
    }
  }
}

PlanCost CostModel::cost(const std::vector<VarId>& order) const {
  // Mirror contract()'s bucket elimination symbolically: per bucket, the
  // product over the union label set costs 2^|union| * (#factors) madds and
  // materializes a 2^|union| intermediate. Label sets live in per-call
  // scratch bitsets; the shared model is read-only, so many competitors can
  // score orders concurrently.
  std::vector<std::uint64_t> live = bits_;           // mutable tensor rows
  std::vector<std::size_t> alive(num_tensors_);
  for (std::size_t t = 0; t < num_tensors_; ++t) alive[t] = t;
  std::vector<std::uint64_t> merged(words_);
  std::size_t extra_rows = 0;  // intermediates appended past the originals

  PlanCost cost;
  for (VarId v : order) {
    const std::size_t word = v / 64;
    const std::uint64_t bit = std::uint64_t{1} << (v % 64);
    std::fill(merged.begin(), merged.end(), 0);
    std::size_t factors = 0;
    std::size_t w = 0;
    while (w < alive.size()) {
      const std::uint64_t* row = live.data() + alive[w] * words_;
      if (row[word] & bit) {
        for (std::size_t k = 0; k < words_; ++k) merged[k] |= row[k];
        ++factors;
        alive[w] = alive.back();  // swap-pop: bucket absorbs this tensor
        alive.pop_back();
      } else {
        ++w;
      }
    }
    if (factors == 0) continue;
    std::size_t rank = 0;
    for (std::size_t k = 0; k < words_; ++k) rank += std::popcount(merged[k]);
    const double entries = std::pow(2.0, static_cast<double>(rank));
    cost.flops += entries * static_cast<double>(factors);
    cost.peak_entries = std::max(cost.peak_entries, entries);
    cost.width = std::max(cost.width, rank);
    merged[word] &= ~bit;
    // Append the summed intermediate as a fresh row.
    live.insert(live.end(), merged.begin(), merged.end());
    alive.push_back(num_tensors_ + extra_rows);
    ++extra_rows;
  }
  return cost;
}

PlanCost estimate_cost(const TensorNetwork& network,
                       const std::vector<VarId>& order) {
  return CostModel(network).cost(order);
}

ContractionPlan plan_contraction(const TensorNetwork& network,
                                 const PlannerOptions& options) {
  QARCH_REQUIRE(options.try_greedy_degree || options.try_greedy_fill ||
                    options.try_priority || options.random_restarts > 0,
                "planner has no heuristics enabled");
  g_planner_invocations.fetch_add(1, std::memory_order_relaxed);

  // Shared read-only setup, built once: the line graph every heuristic
  // copies from, and the cost model every competitor scores against.
  const LineGraph base(network);
  const CostModel model(network);

  const std::uint64_t effective_seed =
      options.seed_from_structure
          ? options.seed ^ splitmix64(network_structure_hash(network))
          : options.seed;

  // One entry per speculative competitor. Each owns its heuristic run AND
  // the scoring of its order, so the fan-out has no sequential tail beyond
  // the final argmin.
  struct Competitor {
    std::string name;
    std::function<std::vector<VarId>()> run;
  };
  std::vector<Competitor> competitors;
  if (options.try_greedy_degree)
    competitors.push_back(
        {"greedy-degree", [&] { return order_greedy_degree(base); }});
  if (options.try_greedy_fill)
    competitors.push_back(
        {"greedy-fill", [&] { return order_greedy_fill(base); }});
  if (options.try_priority)
    competitors.push_back({"priority", [&] { return order_priority(base); }});
  for (std::size_t r = 0; r < options.random_restarts; ++r) {
    // Every restart is its own competitor with a private, index-derived
    // stream: the same orders appear no matter which thread runs which
    // restart or in what sequence.
    competitors.push_back({"random-restart", [&base, effective_seed, r] {
                             Rng rng(splitmix64(effective_seed + r + 1));
                             return order_random(base, rng);
                           }});
  }

  std::vector<ContractionPlan> plans(competitors.size());
  parallel::parallel_for(
      0, competitors.size(),
      [&](std::size_t i) {
        ContractionPlan p;
        p.order = competitors[i].run();
        p.cost = model.cost(p.order);
        p.heuristic = competitors[i].name;
        plans[i] = std::move(p);
      },
      options.workers);

  // Deterministic winner: (flops, width, competitor index). Independent of
  // execution order, so any worker count yields the identical plan.
  std::size_t best = 0;
  for (std::size_t i = 1; i < plans.size(); ++i) {
    const PlanCost& c = plans[i].cost;
    const PlanCost& b = plans[best].cost;
    if (c.flops < b.flops || (c.flops == b.flops && c.width < b.width))
      best = i;
  }
  return std::move(plans[best]);
}

}  // namespace qarch::qtensor
