#include "qtensor/planner.hpp"

#include <cmath>
#include <set>

#include "common/error.hpp"

namespace qarch::qtensor {

PlanCost estimate_cost(const TensorNetwork& network,
                       const std::vector<VarId>& order) {
  // Mirror contract()'s bucket elimination symbolically: per bucket, the
  // product over the union label set costs 2^|union| * (#factors) madds and
  // materializes a 2^|union| intermediate.
  std::vector<std::set<VarId>> tensors;
  tensors.reserve(network.tensors.size());
  for (const Tensor& t : network.tensors)
    tensors.emplace_back(t.labels().begin(), t.labels().end());

  PlanCost cost;
  for (VarId v : order) {
    std::set<VarId> merged;
    std::size_t factors = 0;
    std::vector<std::set<VarId>> rest;
    rest.reserve(tensors.size());
    for (auto& s : tensors) {
      if (s.count(v) > 0) {
        merged.insert(s.begin(), s.end());
        ++factors;
      } else {
        rest.push_back(std::move(s));
      }
    }
    if (factors == 0) continue;
    const double entries = std::pow(2.0, static_cast<double>(merged.size()));
    cost.flops += entries * static_cast<double>(factors);
    cost.peak_entries = std::max(cost.peak_entries, entries);
    cost.width = std::max(cost.width, merged.size());
    merged.erase(v);
    rest.push_back(std::move(merged));
    tensors = std::move(rest);
  }
  return cost;
}

ContractionPlan plan_contraction(const TensorNetwork& network,
                                 const PlannerOptions& options) {
  QARCH_REQUIRE(options.try_greedy_degree || options.try_greedy_fill ||
                    options.random_restarts > 0,
                "planner has no heuristics enabled");

  ContractionPlan best;
  bool have_best = false;
  auto consider = [&](std::vector<VarId> order, const std::string& name) {
    PlanCost cost = estimate_cost(network, order);
    const bool better =
        !have_best || cost.flops < best.cost.flops ||
        (cost.flops == best.cost.flops && cost.width < best.cost.width);
    if (better) {
      best.order = std::move(order);
      best.cost = cost;
      best.heuristic = name;
      have_best = true;
    }
  };

  if (options.try_greedy_degree)
    consider(order_greedy_degree(network), "greedy-degree");
  if (options.try_greedy_fill)
    consider(order_greedy_fill(network), "greedy-fill");
  if (options.random_restarts > 0) {
    Rng rng(options.seed);
    consider(order_random_restart(network, options.random_restarts, rng),
             "random-restart");
  }
  return best;
}

}  // namespace qarch::qtensor
