// Shared, persistable store of chosen contraction orders.
//
// Planning is the dominant cold-path cost: every distinct lightcone shape
// pays one heuristic bake-off. This cache remembers the winning order per
// (canonical shape key, exact network structure hash) so that
//
//   * within a process, every evaluator and every candidate circuit with
//     the same lightcone shape reuses one planned order, and
//   * across processes, orders persist to disk (search::save_plan_cache /
//     load_plan_cache use the result cache's atomic tmp+rename discipline)
//     and a warm run plans NOTHING (planner_invocation_count() stays 0).
//
// Reusing an order is always SOUND: an elimination order is valid for any
// network with the same label structure regardless of tensor data, and the
// structure hash guards exact applicability. A stale or suboptimal entry
// can only cost time, never correctness — and entries whose order does not
// cover the network's variables are rejected at lookup.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "qtensor/network.hpp"
#include "qtensor/planner.hpp"

namespace qarch::qtensor {

/// One persisted planning decision.
struct CachedPlan {
  std::string shape_key;          ///< canonical lightcone shape (may be "")
  std::uint64_t structure_hash = 0;  ///< network_structure_hash of the net
  std::vector<VarId> order;       ///< the winning elimination order
  std::string heuristic;          ///< which competitor produced it
};

/// Thread-safe map from (shape_key, structure_hash) to a planned order.
/// Shared by every ContractionProgram of a session via shared_ptr.
class PlanCache {
 public:
  /// Returns the stored plan for this key pair, if any.
  [[nodiscard]] std::optional<CachedPlan> find(
      const std::string& shape_key, std::uint64_t structure_hash) const;

  /// Stores a plan (last writer wins on duplicate keys).
  void insert(CachedPlan plan);

  /// Merges loaded entries in (existing keys keep their current value, so
  /// in-memory decisions from this run are not clobbered by stale disk
  /// state).
  void merge(std::vector<CachedPlan> plans);

  /// All entries, sorted by key for deterministic persistence.
  [[nodiscard]] std::vector<CachedPlan> snapshot() const;

  [[nodiscard]] std::size_t size() const;

 private:
  static std::string map_key(const std::string& shape_key,
                             std::uint64_t structure_hash);
  mutable Mutex mutex_{52, "cache.orders"};
  std::unordered_map<std::string, CachedPlan> plans_ QARCH_GUARDED_BY(mutex_);
};

}  // namespace qarch::qtensor
