// Index slicing ("step-dependent parallelization", Lykov et al. 2022).
//
// Fixing s wire variables to concrete values splits one contraction into 2^s
// independent sub-contractions whose results add up — each slice is smaller
// (width drops by up to s) and the slices run embarrassingly parallel. This
// is how QTensor distributes one big contraction across GPUs/nodes; here the
// slices fan out over a thread pool.
#pragma once

#include <cstddef>
#include <vector>

#include "qtensor/backend.hpp"
#include "qtensor/contraction.hpp"
#include "qtensor/network.hpp"

namespace qarch::qtensor {

/// Projects a tensor onto var = bit: the label is removed and the data
/// restricted to the matching hyperplane. Tensors lacking the label are
/// returned unchanged.
Tensor project(const Tensor& tensor, VarId var, int bit);

/// Projects every tensor of the network and drops the sliced variables.
TensorNetwork project_network(const TensorNetwork& network,
                              const std::vector<VarId>& slice_vars,
                              std::size_t assignment);

/// Picks `count` slice variables by greedy max-degree in the line graph —
/// removing busy variables shrinks the treewidth fastest.
std::vector<VarId> choose_slice_vars(const TensorNetwork& network,
                                     std::size_t count);

/// Contracts the network by summing 2^|slice_vars| projected contractions,
/// running up to `workers` slices concurrently. `order` must cover every
/// variable of the ORIGINAL network except the slice variables.
ContractionResult contract_sliced(const TensorNetwork& network,
                                  const std::vector<VarId>& order,
                                  const std::vector<VarId>& slice_vars,
                                  const Backend& backend,
                                  std::size_t workers = 1);

}  // namespace qarch::qtensor
