// Labeled dense tensors over binary (dimension-2) indices.
//
// This mirrors QTensor's data model: every tensor index is a *wire variable*
// of the circuit's tensor expression; all variables have dimension 2 (qubit
// wires). A tensor of rank r stores 2^r complex amplitudes row-major with
// labels()[0] outermost.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace qarch::qtensor {

using linalg::cplx;

/// Wire-variable identifier. Each qubit wire segment gets a fresh VarId.
using VarId = std::size_t;

/// Dense tensor over dimension-2 labeled indices.
class Tensor {
 public:
  Tensor() = default;

  /// Tensor with the given index labels and row-major data (size 2^rank).
  /// Labels must be distinct.
  Tensor(std::vector<VarId> labels, std::vector<cplx> data);

  /// Rank-0 scalar tensor.
  static Tensor scalar(cplx value);

  [[nodiscard]] std::size_t rank() const { return labels_.size(); }
  [[nodiscard]] const std::vector<VarId>& labels() const { return labels_; }
  [[nodiscard]] const std::vector<cplx>& data() const { return data_; }
  [[nodiscard]] std::vector<cplx>& data() { return data_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// True when the tensor carries variable v.
  [[nodiscard]] bool has_label(VarId v) const;

  /// Value at a full assignment: bits[k] is the value of labels()[k].
  [[nodiscard]] cplx at(std::span<const int> bits) const;

  /// The scalar value of a rank-0 tensor.
  [[nodiscard]] cplx scalar_value() const;

  /// Sums this tensor over variable v (marginalization); v must be a label.
  [[nodiscard]] Tensor sum_over(VarId v) const;

  /// Returns a copy with indices permuted into `new_order` (a permutation
  /// of labels()).
  [[nodiscard]] Tensor transposed(const std::vector<VarId>& new_order) const;

  /// Conjugates every entry.
  [[nodiscard]] Tensor conjugated() const;

  /// Frobenius distance to another tensor with identical labels.
  [[nodiscard]] double distance(const Tensor& rhs) const;

  /// Human-readable summary like "Tensor[v3,v7] (rank 2)".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<VarId> labels_;
  std::vector<cplx> data_;
};

}  // namespace qarch::qtensor
