// Tensor networks from quantum circuits.
//
// The network for <ψ|O|ψ> with |ψ> = U|+>^n is built directly from the gate
// list: state caps, U's gate tensors, the observable's diagonal tensors, and
// U†'s tensors, all closed (no open indices) so full contraction yields a
// scalar. Two QTensor-specific optimizations are reproduced:
//
//   * Diagonal-gate rank reduction (Lykov & Alexeev 2021): a diagonal gate
//     does not create new wire variables; its tensor is rank-1 (1-qubit) or
//     rank-2 (2-qubit) holding just the diagonal.
//   * Lightcone reduction: for O = Z_u Z_v only gates in the causal cone of
//     {u, v} survive U†·O·U; everything else cancels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "qtensor/tensor.hpp"

namespace qarch::qtensor {

/// Number of tensor networks built (expectation_zz_network +
/// amplitude_network calls) since the last reset. Thread-safe. The compiled
/// contraction plans (qtensor::ContractionProgram) build each network once
/// and rebind tensors afterwards; benches and tests use this probe to prove
/// that training runs and multistart restarts never rebuild — the qtensor
/// analogue of sim::program_compile_count().
std::uint64_t network_build_count();
void reset_network_build_count();

/// Options controlling network construction.
struct NetworkOptions {
  bool diagonal_optimization = true;  ///< rank-reduced diagonal gate tensors
  bool lightcone = true;              ///< causal-cone gate cancellation
};

/// A closed tensor network: contracting over every variable yields a scalar.
struct TensorNetwork {
  std::vector<Tensor> tensors;
  std::size_t num_vars = 0;

  /// All variables that occur in at least one tensor.
  [[nodiscard]] std::vector<VarId> variables() const;

  /// Total number of tensor entries (memory proxy).
  [[nodiscard]] std::size_t total_entries() const;
};

/// Restricts `circuit` to the causal cone of `targets`: scanning the gate
/// list backwards, a gate is kept iff it touches a currently active qubit,
/// and then activates all its qubits. Returns the kept gates in original
/// order; `active` receives the final active-qubit set.
circuit::Circuit lightcone_circuit(const circuit::Circuit& circuit,
                                   const std::vector<std::size_t>& targets,
                                   std::set<std::size_t>* active = nullptr);

/// Ties one network tensor to the SYMBOL-parameterized gate whose matrix
/// fills it. Caps, observables, and fixed/constant-angle gates evaluate to
/// the same data for every theta and are baked at build time; only the
/// tensors listed in a binding vector need their data recomputed when theta
/// changes. `gate` is the effective gate the builder placed (for the U†
/// half of an expectation network it is already the inverse gate), and
/// `diagonal` records whether the rank-reduced diagonal layout was used.
struct GateBinding {
  std::size_t tensor_index = 0;  ///< index into TensorNetwork::tensors
  circuit::Gate gate;            ///< effective (possibly adjoint) gate
  bool diagonal = false;         ///< rank-reduced diagonal tensor layout
};

/// Fills `out` with the tensor data of gate `g` at `theta`, in the layout
/// the network builder uses: diagonal → the 2 (1q) or 4 (2q) diagonal
/// entries; dense → row-major 2x2 (labels [out, in]) or 4x4 (labels
/// [out0, out1, in0, in1]). Returns the number of entries written; `out`
/// must hold at least that many. This is the per-theta rebind kernel of the
/// compiled contraction plans.
std::size_t gate_tensor_data(const circuit::Gate& g,
                             std::span<const double> theta, bool diagonal,
                             std::span<cplx> out);

/// Network for <+|^n U† (Z_u Z_v) U |+>^n with parameters bound to theta.
/// When `bindings` is non-null it receives one GateBinding per
/// symbol-parameterized gate tensor, enabling per-theta rebinds.
TensorNetwork expectation_zz_network(const circuit::Circuit& circuit,
                                     std::span<const double> theta,
                                     std::size_t u, std::size_t v,
                                     const NetworkOptions& options = {},
                                     std::vector<GateBinding>* bindings =
                                         nullptr);

/// Network for the amplitude <bits| U |+>^n (bits[q] in {0,1}).
TensorNetwork amplitude_network(const circuit::Circuit& circuit,
                                std::span<const double> theta,
                                std::span<const int> bits,
                                const NetworkOptions& options = {},
                                std::vector<GateBinding>* bindings = nullptr);

/// Network for <+|^n U† Z_q U |+>^n — the single-qubit analogue of
/// expectation_zz_network, used by Hamiltonians with Z field terms.
TensorNetwork expectation_z_network(const circuit::Circuit& circuit,
                                    std::span<const double> theta,
                                    std::size_t q,
                                    const NetworkOptions& options = {},
                                    std::vector<GateBinding>* bindings =
                                        nullptr);

// -- open-index query networks ------------------------------------------------
//
// The compiled query programs (src/query/) need networks where some output
// wires stay OPEN (batched amplitudes, marginals, per-qubit sampling steps)
// and where basis choices are RE-BINDABLE per replay the way gate parameters
// already are. Both builders below return the network together with its
// rebind points.

/// Ties one network tensor to a computational-basis choice on one qubit: a
/// rank-1 tensor whose data is [bit==0, bit==1] — a <bit| cap in an
/// amplitude network, a diagonal |bit><bit| projector at the observable
/// point of a measurement network (both have the same data layout, so one
/// rebind kernel serves both). Compiled query programs rewrite these two
/// entries per replay instead of rebuilding the network.
struct CapBinding {
  std::size_t tensor_index = 0;  ///< index into TensorNetwork::tensors
  std::size_t qubit = 0;
};

/// Writes the cap/projector data for `bit` into out[0..1].
void cap_tensor_data(int bit, std::span<cplx> out);

/// A network with rebind points and open output variables, as the compiled
/// query programs consume it.
struct QueryNetwork {
  TensorNetwork net;
  std::vector<GateBinding> bindings;  ///< theta-rebindable gate tensors
  std::vector<CapBinding> caps;       ///< bit-rebindable caps / projectors
  /// Open output variables. Contracting every OTHER variable leaves a
  /// tensor over exactly these labels; their order is documented per
  /// builder below.
  std::vector<VarId> open_labels;
};

/// Network for batched amplitudes <bits, *| U |+>^n: every qubit NOT in
/// `open_qubits` ends in a rebindable basis cap (caps ordered by ascending
/// qubit, initially bit 0); each qubit IN `open_qubits` leaves its final
/// wire variable open (open_labels ordered by ascending qubit). Contracting
/// all closed variables yields the 2^k amplitude tensor over the open
/// wires. `open_qubits` must be sorted, unique, and may be empty (plain
/// amplitude).
QueryNetwork amplitude_query_network(const circuit::Circuit& circuit,
                                     std::span<const double> theta,
                                     std::span<const std::size_t> open_qubits,
                                     const NetworkOptions& options = {});

/// Role of one qubit's output wire in a measurement-query network.
enum class WireRole {
  Trace,     ///< marginalized out (wire passes straight into U†)
  Fix,       ///< rebindable diagonal projector |b><b| (a CapBinding)
  Diagonal,  ///< open diagonal index: output entries are probabilities
  Cut        ///< wire cut open on both sides: a row AND a column RDM index
};

/// Network for <+|^n U† M U |+>^n with per-qubit output treatment `roles`
/// (size = num_qubits). Fix inserts a rebindable projector (caps ordered by
/// ascending qubit); Diagonal inserts a copy tensor with a fresh open index
/// o so the contracted tensor is the probability p(o | fixed bits); Cut
/// opens the ket- and bra-side wires separately, yielding reduced-density-
/// matrix indices. open_labels order: all Diagonal labels (ascending
/// qubit), then all Cut ROW labels (ascending qubit), then all Cut COLUMN
/// labels (ascending qubit). Lightcone reduction applies with targets =
/// every non-Trace qubit.
QueryNetwork measure_query_network(const circuit::Circuit& circuit,
                                   std::span<const double> theta,
                                   std::span<const WireRole> roles,
                                   const NetworkOptions& options = {});

}  // namespace qarch::qtensor
