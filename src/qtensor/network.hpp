// Tensor networks from quantum circuits.
//
// The network for <ψ|O|ψ> with |ψ> = U|+>^n is built directly from the gate
// list: state caps, U's gate tensors, the observable's diagonal tensors, and
// U†'s tensors, all closed (no open indices) so full contraction yields a
// scalar. Two QTensor-specific optimizations are reproduced:
//
//   * Diagonal-gate rank reduction (Lykov & Alexeev 2021): a diagonal gate
//     does not create new wire variables; its tensor is rank-1 (1-qubit) or
//     rank-2 (2-qubit) holding just the diagonal.
//   * Lightcone reduction: for O = Z_u Z_v only gates in the causal cone of
//     {u, v} survive U†·O·U; everything else cancels.
#pragma once

#include <cstddef>
#include <set>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "qtensor/tensor.hpp"

namespace qarch::qtensor {

/// Options controlling network construction.
struct NetworkOptions {
  bool diagonal_optimization = true;  ///< rank-reduced diagonal gate tensors
  bool lightcone = true;              ///< causal-cone gate cancellation
};

/// A closed tensor network: contracting over every variable yields a scalar.
struct TensorNetwork {
  std::vector<Tensor> tensors;
  std::size_t num_vars = 0;

  /// All variables that occur in at least one tensor.
  [[nodiscard]] std::vector<VarId> variables() const;

  /// Total number of tensor entries (memory proxy).
  [[nodiscard]] std::size_t total_entries() const;
};

/// Restricts `circuit` to the causal cone of `targets`: scanning the gate
/// list backwards, a gate is kept iff it touches a currently active qubit,
/// and then activates all its qubits. Returns the kept gates in original
/// order; `active` receives the final active-qubit set.
circuit::Circuit lightcone_circuit(const circuit::Circuit& circuit,
                                   const std::vector<std::size_t>& targets,
                                   std::set<std::size_t>* active = nullptr);

/// Network for <+|^n U† (Z_u Z_v) U |+>^n with parameters bound to theta.
TensorNetwork expectation_zz_network(const circuit::Circuit& circuit,
                                     std::span<const double> theta,
                                     std::size_t u, std::size_t v,
                                     const NetworkOptions& options = {});

/// Network for the amplitude <bits| U |+>^n (bits[q] in {0,1}).
TensorNetwork amplitude_network(const circuit::Circuit& circuit,
                                std::span<const double> theta,
                                std::span<const int> bits,
                                const NetworkOptions& options = {});

}  // namespace qarch::qtensor
