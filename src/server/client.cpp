#include "server/client.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "search/fault.hpp"
#include "search/report_io.hpp"

namespace qarch::server {

namespace {

/// Sleep for the k-th retry (0-based): base × 2^k, capped at 2 s so a long
/// daemon restart costs polling, not minutes of exponential silence.
/// Routed through search::backoff_sleep — the one sanctioned delay point in
/// the service path (qarch_lint bans naked sleep_for here).
void backoff(double base_seconds, int attempt) {
  double delay = base_seconds;
  for (int i = 0; i < attempt; ++i) delay *= 2.0;
  search::backoff_sleep(std::min(delay, 2.0));
}

}  // namespace

QarchClient::QarchClient(ClientOptions options) : options_(std::move(options)) {
  QARCH_REQUIRE(options_.port != 0, "QarchClient needs a port");
}

json::Value QarchClient::request(const std::string& method,
                                 const std::string& target,
                                 const std::string& body) {
  HttpLimits limits;
  limits.read_timeout_seconds = options_.request_timeout_seconds;
  std::string last_error;
  int attempt = 0;
  for (;;) {
    // Reuse the keep-alive socket of the previous exchange when we have
    // one; the daemon may have closed it in the meantime (restart, idle
    // reaping), which surfaces as transport trouble below.
    const bool reused = conn_.has_value();
    try {
      if (!conn_) {
        conn_.emplace(tcp_connect(options_.host, options_.port,
                                  options_.connect_timeout_seconds));
        ++connections_opened_;
      }
      std::map<std::string, std::string> headers;
      if (!options_.api_key.empty()) headers["X-Api-Key"] = options_.api_key;
      if (!write_http_request(*conn_, method, target, body, headers))
        throw HttpError(502, "connection closed mid-request");
      HttpResponse response;
      read_http_response(*conn_, response, limits);
      // A parsed response is authoritative — the daemon answered, so stop
      // retrying regardless of the status. The response was fully read, so
      // the connection stays cached for the next request either way.
      if (response.status >= 200 && response.status < 300)
        return json::parse(response.body);
      std::string message = "HTTP " + std::to_string(response.status);
      try {
        const json::Value parsed = json::parse(response.body);
        if (parsed.contains("error"))
          message = parsed.at("error").as_string();
      } catch (const Error&) {
        // Non-JSON error body; keep the status-line message.
      }
      throw ApiError(response.status, message);
    } catch (const ApiError&) {
      throw;
    } catch (const Error& e) {
      // Refused connections, drops mid-exchange, truncated responses: all
      // transport trouble, all retryable — and never on a half-used socket.
      conn_.reset();
      last_error = e.what();
      // A dead KEPT-ALIVE socket is the normal keep-alive race (the daemon
      // closed an idle connection), not daemon trouble: retry immediately
      // on a fresh connection without spending the retry budget.
      if (reused) continue;
      if (++attempt > options_.max_retries) break;
      backoff(options_.retry_backoff_seconds, attempt - 1);
    }
  }
  throw Error("qarch_client: " + method + " " + target + " failed after " +
              std::to_string(options_.max_retries + 1) +
              " attempts; last error: " + last_error);
}

json::Value QarchClient::healthz() { return request("GET", "/healthz", ""); }

json::Value QarchClient::stats() { return request("GET", "/v1/stats", ""); }

std::string QarchClient::submit(const json::Value& body) {
  const json::Value response = request("POST", "/v1/submit", body.dump());
  return response.at("ticket").as_string();
}

json::Value QarchClient::result(const std::string& ticket, double wait_ms) {
  std::string target = "/v1/result/" + ticket;
  if (wait_ms > 0.0)
    target += "?wait_ms=" + std::to_string(static_cast<long>(wait_ms));
  return request("GET", target, "");
}

bool QarchClient::cancel(const std::string& ticket) {
  const json::Value response = request("POST", "/v1/cancel/" + ticket, "");
  return response.at("cancelled").as_bool();
}

search::CandidateResult QarchClient::evaluate(const json::Value& body,
                                              double poll_wait_ms) {
  QARCH_REQUIRE(poll_wait_ms > 0.0, "poll_wait_ms must be positive");
  std::string ticket = submit(body);
  for (;;) {
    json::Value response;
    try {
      response = result(ticket, poll_wait_ms);
    } catch (const ApiError& e) {
      // 404 = the daemon forgot the ticket — it restarted (or evicted a
      // very old record). Resubmit: the service's result cache and
      // in-flight dedup make the resubmission converge on the same
      // candidate instead of retraining from scratch.
      if (e.status() != 404) throw;
      ticket = submit(body);
      continue;
    }
    const std::string& status = response.at("status").as_string();
    if (status == "pending") continue;
    if (status == "done")
      return search::candidate_from_json(response.at("result"));
    std::string message = "evaluation resolved " + status;
    if (response.contains("error"))
      message += ": " + response.at("error").as_string();
    throw ApiError(410, message);
  }
}

json::Value QarchClient::submit_body(const graph::Graph& g,
                                     const std::string& mixer, std::size_t p,
                                     std::size_t budget) {
  json::Value edges = json::Value::array();
  for (const graph::Edge& e : g.edges()) {
    json::Value edge = json::Value::array();
    edge.push_back(e.u);
    edge.push_back(e.v);
    edge.push_back(e.weight);
    edges.push_back(std::move(edge));
  }
  json::Value graph_json = json::Value::object();
  graph_json.set("n", g.num_vertices());
  graph_json.set("edges", std::move(edges));
  json::Value body = json::Value::object();
  body.set("graph", std::move(graph_json));
  body.set("mixer", mixer);
  body.set("p", p);
  if (budget > 0) body.set("budget", budget);
  return body;
}

}  // namespace qarch::server
