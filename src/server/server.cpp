#include "server/server.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "circuit/optimizer.hpp"
#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/extra_generators.hpp"
#include "graph/generators.hpp"
#include "parallel/thread.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/hamiltonian.hpp"
#include "qaoa/objective.hpp"
#include "query/sampler.hpp"
#include "search/fault.hpp"
#include "search/report_io.hpp"

namespace qarch::server {

namespace {

double parse_spec_double(const std::string& s, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    QARCH_REQUIRE(used == s.size(), "trailing junk");
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("tenant spec: bad number for " + what + ": " + s);
  }
}

/// A JSON number that must be a non-negative integer (graph sizes, depths,
/// budgets). Throws InvalidArgument — mapped to 400 — otherwise.
std::size_t as_uint(const json::Value& v, const std::string& what) {
  const double d = v.as_number();
  QARCH_REQUIRE(d >= 0.0 && d == std::floor(d) && d <= 9.0e15,
                what + " must be a non-negative integer");
  return static_cast<std::size_t>(d);
}

std::size_t require_uint(const json::Value& body, const std::string& key) {
  QARCH_REQUIRE(body.contains(key), "submit body is missing \"" + key + "\"");
  return as_uint(body.at(key), "\"" + key + "\"");
}

HttpResponse json_response(int status, const json::Value& body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = body.dump();
  resp.body += '\n';
  return resp;
}

HttpResponse error_body(int status, const std::string& message) {
  json::Value out = json::Value::object();
  out.set("error", message);
  return json_response(status, out);
}

/// Optional training-objective fields shared by /v1/submit: "objective"
/// names the kind, "cvar_alpha" / "objective_shots" parameterize it. The
/// parameter fields without "objective" are rejected (a silent default would
/// mask a typo'd request). Unknown kinds throw InvalidArgument → 400.
std::optional<qaoa::ObjectiveSpec> objective_spec_from_json(
    const json::Value& body) {
  if (!body.contains("objective")) {
    QARCH_REQUIRE(!body.contains("cvar_alpha") &&
                      !body.contains("objective_shots"),
                  "\"cvar_alpha\" / \"objective_shots\" need \"objective\"");
    return std::nullopt;
  }
  qaoa::ObjectiveSpec spec;
  spec.kind =
      qaoa::objective_kind_from_name(body.at("objective").as_string());
  if (body.contains("cvar_alpha")) {
    spec.alpha = body.at("cvar_alpha").as_number();
    QARCH_REQUIRE(spec.alpha > 0.0 && spec.alpha <= 1.0,
                  "\"cvar_alpha\" must be in (0, 1]");
  }
  if (body.contains("objective_shots"))
    spec.shots = as_uint(body.at("objective_shots"), "\"objective_shots\"");
  return spec;
}

/// Optional cost-Hamiltonian fields shared by /v1/submit and /v1/sample:
/// "hamiltonian" names the kind ("maxcut" / "mis" / "ising"),
/// "mis_penalty" / "ising_coupling" / "ising_field" parameterize it.
std::optional<qaoa::HamiltonianSpec> hamiltonian_spec_from_json(
    const json::Value& body) {
  if (!body.contains("hamiltonian")) {
    QARCH_REQUIRE(!body.contains("mis_penalty") &&
                      !body.contains("ising_coupling") &&
                      !body.contains("ising_field"),
                  "Hamiltonian parameters need \"hamiltonian\"");
    return std::nullopt;
  }
  qaoa::HamiltonianSpec spec;
  spec.kind =
      qaoa::hamiltonian_kind_from_name(body.at("hamiltonian").as_string());
  if (body.contains("mis_penalty"))
    spec.penalty = body.at("mis_penalty").as_number();
  if (body.contains("ising_coupling"))
    spec.coupling = body.at("ising_coupling").as_number();
  if (body.contains("ising_field"))
    spec.field = body.at("ising_field").as_number();
  return spec;
}

}  // namespace

TenantSpec TenantSpec::parse(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (true) {
    const std::size_t colon = text.find(':', pos);
    if (colon == std::string::npos) {
      parts.push_back(text.substr(pos));
      break;
    }
    parts.push_back(text.substr(pos, colon - pos));
    pos = colon + 1;
  }
  QARCH_REQUIRE(parts.size() >= 2 && parts.size() <= 6,
                "tenant spec is name:key[:weight[:rate[:burst[:inflight]]]]: " +
                    text);
  TenantSpec spec;
  spec.name = parts[0];
  spec.api_key = parts[1];
  QARCH_REQUIRE(!spec.name.empty() && !spec.api_key.empty(),
                "tenant spec needs a non-empty name and key: " + text);
  if (parts.size() > 2) spec.weight = parse_spec_double(parts[2], "weight");
  if (parts.size() > 3) spec.rate = parse_spec_double(parts[3], "rate");
  if (parts.size() > 4) spec.burst = parse_spec_double(parts[4], "burst");
  if (parts.size() > 5) {
    const double inflight = parse_spec_double(parts[5], "inflight");
    QARCH_REQUIRE(inflight >= 0.0 && inflight == std::floor(inflight),
                  "tenant spec: inflight must be a non-negative integer");
    spec.max_inflight = static_cast<long>(inflight);
  }
  QARCH_REQUIRE(spec.weight >= 0.001 && spec.weight <= 1000.0,
                "tenant spec: weight must be in [0.001, 1000]");
  QARCH_REQUIRE(spec.rate >= -1.0, "tenant spec: negative rate");
  QARCH_REQUIRE(spec.burst >= -1.0, "tenant spec: negative burst");
  return spec;
}

graph::Graph graph_from_submit_json(const json::Value& body,
                                    std::size_t max_vertices) {
  QARCH_REQUIRE(!(body.contains("graph") && body.contains("generator")),
                "submit body has both \"graph\" and \"generator\"");
  if (body.contains("graph")) {
    const json::Value& g = body.at("graph");
    const std::size_t n = require_uint(g, "n");
    QARCH_REQUIRE(n <= max_vertices,
                  "graph has " + std::to_string(n) + " vertices; this daemon " +
                      "accepts at most " + std::to_string(max_vertices));
    QARCH_REQUIRE(g.contains("edges"), "\"graph\" is missing \"edges\"");
    graph::Graph out(n);
    const json::Value& edges = g.at("edges");
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const json::Value& e = edges.at(i);
      QARCH_REQUIRE(e.size() == 2 || e.size() == 3,
                    "edge must be [u, v] or [u, v, weight]");
      const std::size_t u = as_uint(e.at(std::size_t{0}), "edge endpoint");
      const std::size_t v = as_uint(e.at(std::size_t{1}), "edge endpoint");
      const double w = e.size() == 3 ? e.at(std::size_t{2}).as_number() : 1.0;
      out.add_edge(u, v, w);
    }
    return out;
  }
  QARCH_REQUIRE(body.contains("generator"),
                "submit body needs \"graph\" or \"generator\"");
  const json::Value& spec = body.at("generator");
  QARCH_REQUIRE(spec.contains("name"), "\"generator\" is missing \"name\"");
  const std::string& name = spec.at("name").as_string();
  const std::uint64_t seed =
      spec.contains("seed") ? as_uint(spec.at("seed"), "\"seed\"") : 7;
  const auto checked_n = [&](std::size_t n) {
    QARCH_REQUIRE(n <= max_vertices,
                  "generator asks for " + std::to_string(n) +
                      " vertices; this daemon accepts at most " +
                      std::to_string(max_vertices));
    return n;
  };
  if (name == "regular") {
    const std::size_t n = checked_n(require_uint(spec, "n"));
    Rng rng(seed);
    return graph::random_regular(n, require_uint(spec, "degree"), rng);
  }
  if (name == "erdos_renyi") {
    const std::size_t n = checked_n(require_uint(spec, "n"));
    QARCH_REQUIRE(spec.contains("prob"), "erdos_renyi needs \"prob\"");
    Rng rng(seed);
    return graph::erdos_renyi_connected(n, spec.at("prob").as_number(), rng);
  }
  if (name == "ring") return graph::ring(checked_n(require_uint(spec, "n")));
  if (name == "complete")
    return graph::complete(checked_n(require_uint(spec, "n")));
  if (name == "grid") {
    const std::size_t rows = require_uint(spec, "rows");
    const std::size_t cols = require_uint(spec, "cols");
    QARCH_REQUIRE(rows > 0 && cols > 0 && rows * cols <= max_vertices,
                  "grid must have between 1 and " +
                      std::to_string(max_vertices) + " vertices");
    return graph::grid(rows, cols);
  }
  throw InvalidArgument(
      "unknown generator: " + name +
      " (known: regular, erdos_renyi, ring, complete, grid)");
}

struct QarchServer::Impl {
  ServerConfig config;
  search::EvalService* service = nullptr;

  /// One authenticated tenant: the spec with session defaults resolved, its
  /// fair-share queue registration, its token bucket, and its outstanding
  /// tickets (the inflight quota's denominator).
  struct Tenant {
    TenantSpec spec;
    search::EvalClient client;
    double rate = 0.0;             ///< tokens refilled per second
    double burst = 0.0;            ///< bucket capacity; 0 = no rate limit
    std::size_t max_inflight = 0;  ///< 0 = unlimited
    double tokens = 0.0;
    double last_refill = 0.0;
    std::vector<std::string> outstanding;  ///< unresolved ticket ids
    std::size_t submitted = 0;
  };

  struct TicketRecord {
    search::EvalTicket ticket;
    std::string tenant_key;  ///< owning tenant's api key (404 across tenants)
  };

  // -- wire state ------------------------------------------------------------
  std::unique_ptr<TcpListener> listener;
  parallel::Thread acceptor;
  std::vector<parallel::Thread> io_threads;
  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> stopped{false};
  Mutex conn_mutex{12, "server.connqueue"};
  CondVar conn_cv;
  std::deque<std::pair<Socket, std::uint64_t>> conn_queue
      QARCH_GUARDED_BY(conn_mutex);
  std::atomic<std::uint64_t> conn_seq{0};

  // -- tenant / ticket state (guarded by mutex) -------------------------------
  // Tier server.wire, rank 10 in common/lock_order.hpp: held across calls
  // into the service (service.state, rank 30) and across ticket.ready()
  // (service.job, rank 40), so it must rank below both.
  mutable Mutex mutex{10, "server.wire"};
  /// Keyed by api key. NOT annotated: the map is fixed after construction
  /// (authenticate() reads it without the lock by design); the mutable
  /// fields inside each Tenant ARE guarded by `mutex` — a cross-object
  /// guard the static analysis cannot express.
  std::map<std::string, Tenant> tenants;
  std::unordered_map<std::string, TicketRecord> tickets
      QARCH_GUARDED_BY(mutex);
  std::deque<std::string> ticket_order
      QARCH_GUARDED_BY(mutex);  ///< issue order, for eviction
  std::uint64_t next_ticket QARCH_GUARDED_BY(mutex) = 1;
  Counters counters QARCH_GUARDED_BY(mutex);

  /// Ticket-table ceiling; beyond it the oldest records are forgotten (their
  /// submissions still run — only the wire handle disappears, answered 404).
  static constexpr std::size_t kMaxTickets = 65536;

  // -- helpers ---------------------------------------------------------------

  /// Drops resolved/evicted ids from a tenant's outstanding list.
  void prune_outstanding(Tenant& tenant) QARCH_REQUIRES(mutex) {
    auto resolved = [&](const std::string& id) {
      const auto it = tickets.find(id);
      return it == tickets.end() || it->second.ticket.ready();
    };
    tenant.outstanding.erase(std::remove_if(tenant.outstanding.begin(),
                                            tenant.outstanding.end(), resolved),
                             tenant.outstanding.end());
  }

  void evict_tickets() QARCH_REQUIRES(mutex) {
    while (tickets.size() > kMaxTickets && !ticket_order.empty()) {
      tickets.erase(ticket_order.front());
      ticket_order.pop_front();
    }
  }

  HttpResponse error_response(int status, const std::string& message) {
    if (status == 400 || status == 413 || status == 431) {
      LockGuard lock(mutex);
      ++counters.bad_requests;
    }
    return error_body(status, message);
  }

  /// Resolves the X-Api-Key header to a tenant; nullptr = 401 (counted).
  /// Tenant pointers are stable: the map is fixed after construction.
  Tenant* authenticate(const HttpRequest& request) {
    const auto header = request.headers.find("x-api-key");
    if (header != request.headers.end()) {
      const auto it = tenants.find(header->second);
      if (it != tenants.end()) return &it->second;
    }
    LockGuard lock(mutex);
    ++counters.unauthorized;
    return nullptr;
  }

  // -- handlers --------------------------------------------------------------

  HttpResponse handle_healthz() {
    json::Value out = json::Value::object();
    out.set("status", "ok");
    out.set("engine", backend_name(config.session.backend));
    out.set("workers", service->workers());
    out.set("pending", service->pending());
    return json_response(200, out);
  }

  /// Token-bucket admission shared by submit and sample: nullopt = admitted,
  /// otherwise the 429 answer. Runs before any JSON parsing so a
  /// rate-limited tenant must not cost the server parsing either.
  std::optional<HttpResponse> rate_limit(Tenant& tenant) {
    LockGuard lock(mutex);
    if (tenant.burst <= 0.0) return std::nullopt;
    const double now = service->now();
    tenant.tokens = std::min(
        tenant.burst, tenant.tokens + (now - tenant.last_refill) * tenant.rate);
    tenant.last_refill = now;
    if (tenant.tokens < 1.0) {
      ++counters.rate_limited;
      return error_body(429, "rate limit exceeded for tenant \"" +
                                 tenant.spec.name + "\"");
    }
    tenant.tokens -= 1.0;
    return std::nullopt;
  }

  HttpResponse handle_submit(Tenant& tenant, const HttpRequest& request) {
    if (auto rejected = rate_limit(tenant)) return *rejected;

    const json::Value body = json::parse(request.body);
    static const std::array<std::string, 15> kKnown = {
        "graph",       "generator",      "mixer",
        "p",           "budget",         "engine",
        "priority",    "deadline_ms",    "objective",
        "cvar_alpha",  "objective_shots", "hamiltonian",
        "mis_penalty", "ising_coupling", "ising_field"};
    for (const auto& [key, value] : body.items()) {
      (void)value;
      QARCH_REQUIRE(std::find(kKnown.begin(), kKnown.end(), key) !=
                        kKnown.end(),
                    "unknown submit field: \"" + key + "\"");
    }
    const graph::Graph g = graph_from_submit_json(body, config.max_vertices);
    QARCH_REQUIRE(body.contains("mixer"), "submit body is missing \"mixer\"");
    const qaoa::MixerSpec mixer =
        qaoa::MixerSpec::parse(body.at("mixer").as_string());
    const std::size_t p = require_uint(body, "p");
    QARCH_REQUIRE(p >= 1, "\"p\" must be at least 1");

    if (body.contains("engine")) {
      const std::string& engine = body.at("engine").as_string();
      const std::string mine = backend_name(config.session.backend);
      // EvalService has no per-job engine override, so "engine" is an
      // assertion, not a request: mismatches are refused rather than
      // silently served by a different simulator.
      if (engine != mine)
        return error_response(
            409, "engine mismatch: this daemon runs \"" + mine +
                     "\", the request requires \"" + engine + "\"");
    }

    search::JobOptions options;
    options.client = tenant.client.id();
    if (body.contains("budget"))
      options.training_evals = as_uint(body.at("budget"), "\"budget\"");
    if (body.contains("priority"))
      options.priority = static_cast<int>(body.at("priority").as_number());
    if (body.contains("deadline_ms")) {
      const double deadline_ms = body.at("deadline_ms").as_number();
      QARCH_REQUIRE(deadline_ms >= 0.0, "\"deadline_ms\" must be >= 0");
      options.deadline_seconds = deadline_ms / 1000.0;
    }
    // nullopt = inherit the daemon's session-level objective/Hamiltonian —
    // an explicit field overrides per job (and becomes part of the
    // candidate's cache identity inside the service).
    options.objective = objective_spec_from_json(body);
    options.hamiltonian = hamiltonian_spec_from_json(body);

    // Quota check, submission, and bookkeeping under one lock so concurrent
    // submits cannot both squeeze through the last quota slot.
    std::string id;
    search::EvalTicket ticket;
    {
      LockGuard lock(mutex);
      if (tenant.max_inflight > 0) {
        prune_outstanding(tenant);
        if (tenant.outstanding.size() >= tenant.max_inflight) {
          ++counters.quota_rejected;
          return error_body(
              429, "tenant \"" + tenant.spec.name + "\" already has " +
                       std::to_string(tenant.outstanding.size()) +
                       " unresolved tickets (quota " +
                       std::to_string(tenant.max_inflight) + ")");
        }
      }
      ticket = service->submit(g, mixer, p, options);
      id = "t-" + std::to_string(next_ticket++);
      tickets.emplace(id, TicketRecord{ticket, tenant.spec.api_key});
      ticket_order.push_back(id);
      tenant.outstanding.push_back(id);
      ++tenant.submitted;
      ++counters.submits;
      evict_tickets();
    }

    json::Value out = json::Value::object();
    out.set("ticket", id);
    out.set("status", ticket.ready() ? "ready" : "queued");
    out.set("cached", ticket.cache_hit());
    return json_response(202, out);
  }

  /// POST /v1/sample: draw basis states from a fixed-parameter ansatz,
  /// synchronously on the IO thread (sampling is a bounded replay, not a
  /// training loop — no ticket, no queue, no outstanding-quota charge).
  /// Unlike submit, "engine" here is a REQUEST: "sv" / "tn" / "auto" pick
  /// the sampling engine per call (sampling has no cross-process cache whose
  /// identity an engine switch could corrupt).
  HttpResponse handle_sample(Tenant& tenant, const HttpRequest& request) {
    if (auto rejected = rate_limit(tenant)) return *rejected;

    const json::Value body = json::parse(request.body);
    static const std::array<std::string, 12> kKnown = {
        "graph", "generator",   "mixer",       "p",
        "theta", "shots",       "seed",        "engine",
        "hamiltonian", "mis_penalty", "ising_coupling", "ising_field"};
    for (const auto& [key, value] : body.items()) {
      (void)value;
      QARCH_REQUIRE(std::find(kKnown.begin(), kKnown.end(), key) !=
                        kKnown.end(),
                    "unknown sample field: \"" + key + "\"");
    }
    const graph::Graph g = graph_from_submit_json(body, config.max_vertices);
    QARCH_REQUIRE(body.contains("mixer"), "sample body is missing \"mixer\"");
    const qaoa::MixerSpec mixer =
        qaoa::MixerSpec::parse(body.at("mixer").as_string());
    const std::size_t p = require_uint(body, "p");
    QARCH_REQUIRE(p >= 1, "\"p\" must be at least 1");
    const std::size_t shots = require_uint(body, "shots");
    QARCH_REQUIRE(shots >= 1 && shots <= 1000000,
                  "\"shots\" must be in [1, 1000000]");
    const std::uint64_t seed =
        body.contains("seed") ? as_uint(body.at("seed"), "\"seed\"") : 0;

    BackendChoice choice = config.session.backend;
    if (body.contains("engine"))
      choice = backend_from_name(body.at("engine").as_string());
    const qaoa::EngineKind engine =
        choice == BackendChoice::Statevector ? qaoa::EngineKind::Statevector
        : choice == BackendChoice::TensorNetwork
            ? qaoa::EngineKind::TensorNetwork
            : search::auto_engine_choice(config.session, g, mixer, p);

    circuit::Circuit ansatz = qaoa::build_qaoa_circuit(g, p, mixer);
    if (config.session.simplify_circuit) ansatz = circuit::optimize(ansatz);
    QARCH_REQUIRE(body.contains("theta"), "sample body is missing \"theta\"");
    const json::Value& theta_json = body.at("theta");
    std::vector<double> theta;
    theta.reserve(theta_json.size());
    for (std::size_t i = 0; i < theta_json.size(); ++i)
      theta.push_back(theta_json.at(i).as_number());
    QARCH_REQUIRE(theta.size() == ansatz.num_params(),
                  "\"theta\" must have " +
                      std::to_string(ansatz.num_params()) +
                      " entries for p=" + std::to_string(p) + ", got " +
                      std::to_string(theta.size()));

    // The same engine-reconciled options the Evaluator samples with
    // (Evaluator::sampler_options), so wire draws match direct ones
    // bit-for-bit at equal (engine, seed).
    const qaoa::EnergyOptions energy = config.session.energy_options(engine);
    query::SamplerOptions so;
    so.engine = engine == qaoa::EngineKind::Statevector
                    ? query::SamplerEngine::Statevector
                    : query::SamplerEngine::TensorNetwork;
    so.query = query::query_options(energy.qtensor);
    so.tn_backend = energy.qtensor.backend;
    so.sv_plan = energy.sv_plan;
    so.sv_workers = energy.inner_workers;
    const query::Sampler sampler(ansatz, so);

    Rng rng(seed);
    const std::vector<std::size_t> samples = sampler.sample(theta, shots, rng);
    const qaoa::Hamiltonian ham =
        hamiltonian_spec_from_json(body).value_or(config.session.hamiltonian)
            .build(g);

    json::Value samples_json = json::Value::array();
    json::Value values_json = json::Value::array();
    for (const std::size_t s : samples) {
      samples_json.push_back(s);
      values_json.push_back(ham.classical_value_bits(s));
    }
    {
      LockGuard lock(mutex);
      ++counters.samples;
    }
    json::Value out = json::Value::object();
    out.set("samples", std::move(samples_json));
    out.set("values", std::move(values_json));
    out.set("engine",
            engine == qaoa::EngineKind::Statevector ? "sv" : "tn");
    out.set("shots", shots);
    return json_response(200, out);
  }

  /// Looks a ticket up for a tenant; an invalid EvalTicket means 404 —
  /// unknown and foreign tickets are deliberately indistinguishable.
  search::EvalTicket lookup(const Tenant& tenant, const std::string& id) {
    LockGuard lock(mutex);
    const auto it = tickets.find(id);
    if (it == tickets.end() || it->second.tenant_key != tenant.spec.api_key)
      return {};
    return it->second.ticket;
  }

  HttpResponse handle_result(Tenant& tenant, const std::string& id,
                             const HttpRequest& request) {
    const search::EvalTicket ticket = lookup(tenant, id);
    if (!ticket.valid()) return error_body(404, "unknown ticket: " + id);

    double wait_ms = 0.0;
    const std::string wait_text = request.query_value("wait_ms", "0");
    try {
      std::size_t used = 0;
      wait_ms = std::stod(wait_text, &used);
      QARCH_REQUIRE(used == wait_text.size() && wait_ms >= 0.0, "wait_ms");
    } catch (const std::exception&) {
      return error_response(400, "bad wait_ms: " + wait_text);
    }
    const double wait_seconds =
        std::min(wait_ms / 1000.0, config.session.server_max_wait_seconds);

    // Long-poll in short slices so stop() never waits behind a poller: once
    // stopping is set, unresolved polls answer "pending" immediately.
    std::string status;
    std::string error;
    const search::CandidateResult* result = nullptr;
    try {
      result = ticket.wait_for(0.0);
      double waited = 0.0;
      while (result == nullptr && waited < wait_seconds && !stopping.load()) {
        const double slice = std::min(0.05, wait_seconds - waited);
        result = ticket.wait_for(slice);
        waited += slice;
      }
      status = result != nullptr ? "done" : "pending";
    } catch (const Error& e) {
      if (ticket.expired()) {
        status = "expired";
      } else if (ticket.cancelled() ||
                 std::string(e.what()).find("cancelled") !=
                     std::string::npos) {
        status = "cancelled";
      } else {
        status = "failed";
        error = e.what();
      }
    }

    json::Value out = json::Value::object();
    out.set("ticket", id);
    out.set("status", status);
    if (result != nullptr) {
      json::Value r = search::candidate_to_json(*result);
      // from_cache is per-SUBMISSION (did THIS ticket cause a run?), not the
      // cached CandidateResult's stale flag.
      r.set("from_cache", ticket.cache_hit());
      out.set("from_cache", ticket.cache_hit());
      out.set("result", std::move(r));
    }
    if (!error.empty()) out.set("error", error);
    return json_response(200, out);
  }

  HttpResponse handle_cancel(Tenant& tenant, const std::string& id) {
    search::EvalTicket ticket = lookup(tenant, id);
    if (!ticket.valid()) return error_body(404, "unknown ticket: " + id);
    const bool cancelled = ticket.cancel();
    if (cancelled) {
      LockGuard lock(mutex);
      ++counters.cancels;
    }
    json::Value out = json::Value::object();
    out.set("ticket", id);
    out.set("cancelled", cancelled);
    return json_response(200, out);
  }

  HttpResponse handle_stats() {
    const search::EvalService::Stats stats = service->stats();
    const std::vector<search::EvalService::ClientInfo> queues =
        service->clients();

    json::Value svc = json::Value::object();
    svc.set("submitted", stats.submitted);
    svc.set("completed", stats.completed);
    svc.set("cancelled", stats.cancelled);
    svc.set("failed", stats.failed);
    svc.set("cache_hits", stats.cache_hits);
    svc.set("cache_misses", stats.cache_misses);
    svc.set("deadline_expired", stats.deadline_expired);
    svc.set("parked", stats.parked);
    svc.set("resumed", stats.resumed);
    svc.set("retried", stats.retried);

    json::Value wire = json::Value::object();
    Counters snapshot;
    {
      LockGuard lock(mutex);
      snapshot = counters;
    }
    wire.set("connections", snapshot.connections);
    wire.set("requests", snapshot.requests);
    wire.set("bad_requests", snapshot.bad_requests);
    wire.set("unauthorized", snapshot.unauthorized);
    wire.set("rate_limited", snapshot.rate_limited);
    wire.set("quota_rejected", snapshot.quota_rejected);
    wire.set("submits", snapshot.submits);
    wire.set("samples", snapshot.samples);
    wire.set("cancels", snapshot.cancels);
    wire.set("dropped", snapshot.dropped);

    json::Value tenants_json = json::Value::array();
    {
      LockGuard lock(mutex);
      for (auto& [key, tenant] : tenants) {
        (void)key;
        prune_outstanding(tenant);
        json::Value t = json::Value::object();
        t.set("name", tenant.spec.name);
        t.set("weight", tenant.spec.weight);
        t.set("outstanding", tenant.outstanding.size());
        t.set("submitted", tenant.submitted);
        for (const auto& queue : queues)
          if (queue.id == tenant.client.id()) t.set("queued", queue.queued);
        tenants_json.push_back(std::move(t));
      }
    }

    json::Value out = json::Value::object();
    out.set("service", std::move(svc));
    out.set("server", std::move(wire));
    out.set("tenants", std::move(tenants_json));
    out.set("pending", service->pending());
    out.set("workers", service->workers());
    out.set("engine", backend_name(config.session.backend));
    out.set("uptime_seconds", service->now());
    return json_response(200, out);
  }

  HttpResponse dispatch(const HttpRequest& request) {
    try {
      if (request.path == "/healthz") {
        if (request.method != "GET")
          return error_body(405, "healthz is GET-only");
        return handle_healthz();
      }
      Tenant* tenant = authenticate(request);
      if (tenant == nullptr)
        return error_body(401, "missing or unknown X-Api-Key");
      if (request.path == "/v1/submit") {
        if (request.method != "POST")
          return error_body(405, "submit is POST-only");
        return handle_submit(*tenant, request);
      }
      if (request.path == "/v1/sample") {
        if (request.method != "POST")
          return error_body(405, "sample is POST-only");
        return handle_sample(*tenant, request);
      }
      if (request.path.rfind("/v1/result/", 0) == 0) {
        if (request.method != "GET")
          return error_body(405, "result is GET-only");
        return handle_result(*tenant, request.path.substr(11), request);
      }
      if (request.path.rfind("/v1/cancel/", 0) == 0) {
        if (request.method != "POST")
          return error_body(405, "cancel is POST-only");
        return handle_cancel(*tenant, request.path.substr(11));
      }
      if (request.path == "/v1/stats") {
        if (request.method != "GET")
          return error_body(405, "stats is GET-only");
        return handle_stats();
      }
      return error_body(404, "no such endpoint: " + request.path);
    } catch (const HttpError& e) {
      return error_response(e.status(), e.what());
    } catch (const Error& e) {
      // Everything qarch throws out of a handler is an input problem
      // (malformed JSON, bad graph, unparsable mixer): the client's fault.
      return error_response(400, e.what());
    } catch (const std::exception& e) {
      return error_body(500, e.what());
    }
  }

  // -- wire loops ------------------------------------------------------------

  void handle_connection(Socket conn, std::uint64_t conn_id) {
    HttpLimits limits;
    limits.max_body_bytes = config.session.server_max_body_bytes;
    // One fault verdict per connection, decided up front: a doomed
    // connection still reads its request (the client committed the bytes)
    // and then vanishes without an answer — the nastiest drop to recover
    // from, because the client cannot know whether the submit landed.
    const bool doomed =
        search::FaultInjector::instance().drop_connection(conn_id);
    for (;;) {
      // Idle in short slices between keep-alive requests so a quiet
      // connection never delays shutdown.
      bool ready = false;
      while (!stopping.load())
        if (conn.readable(0.1)) {
          ready = true;
          break;
        }
      if (!ready) return;

      HttpRequest request;
      try {
        if (!read_http_request(conn, request, limits)) return;
      } catch (const HttpError& e) {
        // Framing is unreliable after a malformed request: answer and close.
        if (e.status() == 400 || e.status() == 413 || e.status() == 431) {
          LockGuard lock(mutex);
          ++counters.bad_requests;
        }
        write_http_response(conn, error_body(e.status(), e.what()));
        return;
      }
      if (doomed) {
        LockGuard lock(mutex);
        ++counters.dropped;
        return;
      }
      {
        LockGuard lock(mutex);
        ++counters.requests;
      }
      const HttpResponse response = dispatch(request);
      if (!conn.send_all(serialize_response_head(response))) return;
      // The mid-response crash point: header bytes are on the wire, the
      // body is not. QARCH_FAULT="crash=server_response:N" kills here.
      search::FaultInjector::instance().at_point("server_response");
      if (!conn.send_all(response.body)) return;

      const auto connection = request.headers.find("connection");
      if (connection != request.headers.end() &&
          connection->second == "close")
        return;
      if (stopping.load()) return;
    }
  }

  void accept_loop() {
    while (!stopping.load()) {
      Socket conn = listener->accept(0.1);
      if (!conn.valid()) continue;
      const std::uint64_t id = ++conn_seq;
      {
        LockGuard lock(mutex);
        ++counters.connections;
      }
      {
        LockGuard lock(conn_mutex);
        conn_queue.emplace_back(std::move(conn), id);
      }
      conn_cv.notify_one();
    }
  }

  void io_loop() {
    for (;;) {
      std::pair<Socket, std::uint64_t> item;
      {
        UniqueLock lock(conn_mutex);
        while (!stopping.load() && conn_queue.empty()) conn_cv.wait(lock);
        if (conn_queue.empty()) return;  // stopping, queue drained
        item = std::move(conn_queue.front());
        conn_queue.pop_front();
      }
      handle_connection(std::move(item.first), item.second);
    }
  }
};

QarchServer::QarchServer(ServerConfig config)
    : impl_(std::make_unique<Impl>()),
      service_(std::make_unique<search::EvalService>(config.session)) {
  impl_->config = std::move(config);
  impl_->service = service_.get();
  for (const TenantSpec& spec : impl_->config.tenants) {
    QARCH_REQUIRE(!spec.name.empty() && !spec.api_key.empty(),
                  "every tenant needs a name and an api key");
    Impl::Tenant tenant;
    tenant.spec = spec;
    const SessionConfig& session = impl_->config.session;
    tenant.rate = spec.rate >= 0.0 ? spec.rate : session.server_rate;
    tenant.burst = spec.burst >= 0.0 ? spec.burst : session.server_burst;
    tenant.max_inflight = spec.max_inflight >= 0
                              ? static_cast<std::size_t>(spec.max_inflight)
                              : session.server_max_inflight;
    tenant.tokens = tenant.burst;
    tenant.client = service_->register_client(spec.name, spec.weight);
    const bool inserted =
        impl_->tenants.emplace(spec.api_key, std::move(tenant)).second;
    QARCH_REQUIRE(inserted, "duplicate tenant api key");
  }
}

QarchServer::~QarchServer() {
  try {
    stop(1.0);
  } catch (...) {
    // Destructors do not throw; a failed drain still falls through to the
    // service destructor, which persists caches itself.
  }
}

void QarchServer::start() {
  QARCH_REQUIRE(!impl_->started.load(), "QarchServer already started");
  QARCH_REQUIRE(!impl_->tenants.empty(),
                "QarchServer needs at least one tenant to serve /v1/*");
  impl_->listener = std::make_unique<TcpListener>(impl_->config.port);
  impl_->started.store(true);
  impl_->acceptor = parallel::Thread([this] { impl_->accept_loop(); });
  const std::size_t n = std::max<std::size_t>(
      1, impl_->config.session.server_io_threads);
  impl_->io_threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    impl_->io_threads.emplace_back([this] { impl_->io_loop(); });
}

void QarchServer::stop(double drain_timeout_seconds) {
  if (impl_->stopped.exchange(true)) return;
  impl_->stopping.store(true);
  if (impl_->listener) impl_->listener->close();
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  impl_->conn_cv.notify_all();
  for (parallel::Thread& t : impl_->io_threads)
    if (t.joinable()) t.join();
  {
    LockGuard lock(impl_->conn_mutex);
    impl_->conn_queue.clear();  // never-served sockets close here
  }
  service_->drain(drain_timeout_seconds);
}

std::uint16_t QarchServer::port() const {
  QARCH_REQUIRE(impl_->listener != nullptr, "QarchServer not started");
  return impl_->listener->port();
}

QarchServer::Counters QarchServer::counters() const {
  LockGuard lock(impl_->mutex);
  return impl_->counters;
}

HttpResponse QarchServer::handle(const HttpRequest& request) {
  return impl_->dispatch(request);
}

}  // namespace qarch::server
