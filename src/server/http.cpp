#include "server/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace qarch::server {

namespace {

/// Blocks until fd is readable (or writable) or timeout_seconds passed.
/// Returns true when the fd is ready.
bool wait_ready(int fd, bool for_write, double timeout_seconds) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = for_write ? POLLOUT : POLLIN;
  pfd.revents = 0;
  const int ms = timeout_seconds < 0.0
                     ? -1
                     : static_cast<int>(timeout_seconds * 1000.0 + 0.5);
  for (;;) {
    const int rc = ::poll(&pfd, 1, ms);
    if (rc > 0) return (pfd.revents & (pfd.events | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

/// Incremental line reader over a socket: buffers reads, hands back one
/// LF-terminated line at a time (CR stripped), and enforces a byte budget on
/// the whole header section.
class LineReader {
 public:
  LineReader(Socket& socket, const HttpLimits& limits)
      : socket_(socket), limits_(limits) {}

  /// Reads one header line. `first_line` distinguishes a clean EOF before
  /// any bytes (returns false) from a truncated request (throws).
  bool next_line(std::string& line, bool first_line) {
    line.clear();
    for (;;) {
      while (pos_ < buffer_.size()) {
        const char c = buffer_[pos_++];
        if (c == '\n') {
          if (!line.empty() && line.back() == '\r') line.pop_back();
          return true;
        }
        line.push_back(c);
        if (line.size() > limits_.max_header_bytes)
          throw HttpError(431, "header line too long");
      }
      if (!fill()) {
        if (first_line && line.empty() && consumed_ == 0) return false;
        throw HttpError(400, "connection closed mid-request");
      }
    }
  }

  /// Moves `n` body bytes into `out` (which already holds any bytes
  /// over-read past the headers).
  void read_body(std::string& out, std::size_t n) {
    out.append(buffer_, pos_, std::min(n - out.size(),
                                       buffer_.size() - pos_));
    pos_ = buffer_.size();
    while (out.size() < n) {
      char chunk[4096];
      const long got = socket_.recv_some(
          chunk, std::min(sizeof chunk, n - out.size()),
          limits_.read_timeout_seconds);
      if (got < 0) throw HttpError(408, "timed out reading request body");
      if (got == 0) throw HttpError(400, "connection closed mid-body");
      out.append(chunk, static_cast<std::size_t>(got));
    }
  }

 private:
  bool fill() {
    char chunk[4096];
    const long got =
        socket_.recv_some(chunk, sizeof chunk, limits_.read_timeout_seconds);
    if (got < 0) throw HttpError(408, "timed out reading request");
    if (got == 0) return false;
    // Compact the consumed prefix so the buffer stays small across
    // keep-alive requests.
    buffer_.erase(0, pos_);
    pos_ = 0;
    buffer_.append(chunk, static_cast<std::size_t>(got));
    consumed_ += static_cast<std::size_t>(got);
    return true;
  }

  Socket& socket_;
  const HttpLimits& limits_;
  std::string buffer_;
  std::size_t pos_ = 0;
  std::size_t consumed_ = 0;
};

/// Splits "path?a=1&b=2" into path + decoded query map. Values are used
/// verbatim (the protocol only passes integers and ticket ids — no
/// percent-decoding needed).
void split_target(const std::string& target, std::string& path,
                  std::map<std::string, std::string>& query) {
  const std::size_t qmark = target.find('?');
  path = target.substr(0, qmark);
  if (qmark == std::string::npos) return;
  std::size_t pos = qmark + 1;
  while (pos <= target.size()) {
    std::size_t amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    const std::string item = target.substr(pos, amp - pos);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos)
        query[item] = "";
      else
        query[item.substr(0, eq)] = item.substr(eq + 1);
    }
    pos = amp + 1;
  }
}

/// Parses the headers shared by requests and responses. Total section size
/// is bounded by max_header_bytes across all lines.
void read_headers(LineReader& reader,
                  std::map<std::string, std::string>& headers,
                  const HttpLimits& limits) {
  std::string line;
  std::size_t total = 0;
  for (;;) {
    reader.next_line(line, /*first_line=*/false);
    if (line.empty()) return;
    total += line.size();
    if (total > limits.max_header_bytes)
      throw HttpError(431, "header section too large");
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos)
      throw HttpError(400, "malformed header line");
    headers[lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
  }
}

std::size_t parse_content_length(
    const std::map<std::string, std::string>& headers,
    const HttpLimits& limits, int over_limit_status) {
  const auto te = headers.find("transfer-encoding");
  if (te != headers.end() && lower(te->second) != "identity")
    throw HttpError(400, "transfer-encoding not supported");
  const auto it = headers.find("content-length");
  if (it == headers.end()) return 0;
  const std::string& text = it->second;
  if (text.empty() ||
      !std::all_of(text.begin(), text.end(),
                   [](unsigned char c) { return std::isdigit(c); }))
    throw HttpError(400, "malformed content-length");
  unsigned long long n = 0;
  try {
    n = std::stoull(text);
  } catch (const std::exception&) {
    throw HttpError(400, "malformed content-length");
  }
  if (n > limits.max_body_bytes)
    throw HttpError(over_limit_status, "body exceeds limit");
  return static_cast<std::size_t>(n);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::send_all(const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const long rc = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!wait_ready(fd_, /*for_write=*/true, 30.0)) return false;
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(rc);
  }
  return true;
}

bool Socket::readable(double timeout_seconds) const {
  return wait_ready(fd_, /*for_write=*/false, timeout_seconds);
}

long Socket::recv_some(char* buf, std::size_t n, double timeout_seconds) {
  if (!wait_ready(fd_, /*for_write=*/false, timeout_seconds)) return -1;
  for (;;) {
    const long rc = ::recv(fd_, buf, n, 0);
    if (rc >= 0) return rc;
    if (errno == EINTR) continue;
    return -1;
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error("listener: socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) <
      0) {
    const std::string what =
        "listener: cannot bind 127.0.0.1:" + std::to_string(port) + ": " +
        std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error(what);
  }
  if (::listen(fd_, 128) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw Error("listener: listen() failed");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) ==
      0)
    port_ = ntohs(addr.sin_port);
}

Socket TcpListener::accept(double timeout_seconds) {
  if (fd_ < 0) return Socket();
  if (!wait_ready(fd_, /*for_write=*/false, timeout_seconds)) return Socket();
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) return Socket();
  const int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(conn);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_connect(const std::string& host, std::uint16_t port,
                   double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("connect: socket() failed");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("connect: bad address " + host);
  }
  // Non-blocking connect with a poll deadline, then back to blocking IO.
  // (A refused loopback connect fails immediately; the timeout matters for
  // a daemon mid-restart.)
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    throw Error("connect: " + host + ":" + std::to_string(port) + ": " +
                std::strerror(errno));
  }
  (void)timeout_seconds;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

std::string HttpRequest::query_value(const std::string& key,
                                     const std::string& fallback) const {
  const auto it = query.find(key);
  return it == query.end() ? fallback : it->second;
}

bool read_http_request(Socket& socket, HttpRequest& out,
                       const HttpLimits& limits) {
  out = HttpRequest();
  LineReader reader(socket, limits);
  std::string line;
  if (!reader.next_line(line, /*first_line=*/true)) return false;
  // METHOD SP TARGET SP VERSION
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos)
    throw HttpError(400, "malformed request line");
  out.method = line.substr(0, sp1);
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0)
    throw HttpError(400, "unsupported HTTP version");
  split_target(line.substr(sp1 + 1, sp2 - sp1 - 1), out.path, out.query);
  read_headers(reader, out.headers, limits);
  const std::size_t length =
      parse_content_length(out.headers, limits, /*over_limit_status=*/413);
  if (length > 0) reader.read_body(out.body, length);
  return true;
}

std::string serialize_response_head(const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_reason(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "\r\n";
  return head;
}

bool write_http_response(Socket& socket, const HttpResponse& response) {
  return socket.send_all(serialize_response_head(response)) &&
         socket.send_all(response.body);
}

bool write_http_request(Socket& socket, const std::string& method,
                        const std::string& target, const std::string& body,
                        const std::map<std::string, std::string>& headers) {
  std::string head = method + " " + target + " HTTP/1.1\r\n";
  head += "Host: qarchd\r\n";
  for (const auto& [key, value] : headers)
    head += key + ": " + value + "\r\n";
  if (!body.empty()) head += "Content-Type: application/json\r\n";
  head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  head += "\r\n";
  return socket.send_all(head) && socket.send_all(body);
}

void read_http_response(Socket& socket, HttpResponse& out,
                        const HttpLimits& limits) {
  out = HttpResponse();
  LineReader reader(socket, limits);
  std::string line;
  try {
    if (!reader.next_line(line, /*first_line=*/true))
      throw HttpError(502, "connection closed before response");
    // HTTP/1.1 SP STATUS SP REASON
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos || line.rfind("HTTP/1.", 0) != 0)
      throw HttpError(502, "malformed status line");
    try {
      out.status = std::stoi(line.substr(sp1 + 1));
    } catch (const std::exception&) {
      throw HttpError(502, "malformed status code");
    }
    read_headers(reader, out.headers, limits);
    const std::size_t length =
        parse_content_length(out.headers, limits, /*over_limit_status=*/502);
    if (length > 0) reader.read_body(out.body, length);
  } catch (const HttpError&) {
    throw;
  } catch (const Error& e) {
    throw HttpError(502, std::string("bad response: ") + e.what());
  }
}

std::string status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

}  // namespace qarch::server
