// Minimal portable HTTP/1.1 over POSIX sockets: the wire substrate of the
// qarchd daemon and the qarch_client library.
//
// Scope is deliberately small — newline-delimited request/status lines and
// headers, Content-Length bodies, bounded reads — because everything behind
// the wire (scheduling, caching, preemption) already lives in
// search::EvalService; this layer only has to move JSON strings across a
// socket safely:
//
//   * every read is bounded (header-section and body byte limits, poll-based
//     timeouts), so a slow or malicious peer cannot wedge a server thread or
//     balloon memory — violations surface as HttpError with the HTTP status
//     the server should answer (400 / 413 / 431 / 408);
//   * both CRLF and bare-LF line endings are accepted on input and CRLF is
//     always emitted, so hand-typed `nc` sessions work;
//   * connections are blocking sockets driven by poll() — no epoll, no
//     platform-specific event machinery — which keeps the layer portable to
//     anything POSIX.
//
// Nothing in here knows about tenants, tickets, or JSON; see server.hpp for
// the daemon and client.hpp for the typed client.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/error.hpp"

namespace qarch::server {

/// A protocol violation with the HTTP status the peer should be told.
/// Thrown by the request/response readers; the server maps it to an error
/// response, the client surfaces it to the caller.
class HttpError : public Error {
 public:
  HttpError(int status, const std::string& what)
      : Error(what), status_(status) {}
  [[nodiscard]] int status() const { return status_; }

 private:
  int status_;
};

/// RAII wrapper of one connected TCP socket (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Writes all n bytes (SIGPIPE suppressed). Returns false when the peer
  /// went away mid-write — callers treat that as a dropped connection, not
  /// an error worth throwing for.
  bool send_all(const char* data, std::size_t n);
  bool send_all(const std::string& data) {
    return send_all(data.data(), data.size());
  }

  /// Reads up to n bytes, waiting at most timeout_seconds for the first
  /// byte. Returns the byte count, 0 on orderly EOF, and -1 on timeout or
  /// error.
  long recv_some(char* buf, std::size_t n, double timeout_seconds);

  /// True when a read would not block (data or EOF pending) within
  /// timeout_seconds. Lets a server idle on a keep-alive connection in
  /// short slices so shutdown stays responsive.
  [[nodiscard]] bool readable(double timeout_seconds) const;

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1 (loopback only: qarchd is a
/// front door for a trusted reverse proxy, not a hardened public endpoint).
/// Port 0 binds an ephemeral port — read the real one back via port().
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener() { close(); }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Waits up to timeout_seconds for a connection; an invalid Socket means
  /// the wait timed out (poll again) or the listener was closed.
  Socket accept(double timeout_seconds);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to host:port, waiting at most timeout_seconds. Throws Error on
/// refusal or timeout.
Socket tcp_connect(const std::string& host, std::uint16_t port,
                   double timeout_seconds);

/// One parsed HTTP request.
struct HttpRequest {
  std::string method;                          ///< "GET", "POST", ...
  std::string path;                            ///< target without the query
  std::map<std::string, std::string> query;    ///< decoded ?key=value pairs
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;

  /// Query parameter or `fallback` when absent.
  [[nodiscard]] std::string query_value(const std::string& key,
                                        const std::string& fallback) const;
};

/// One HTTP response to serialize (server) or parse (client).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::map<std::string, std::string> headers;  ///< parsed on the client side
  std::string body;
};

/// Byte bounds and pacing of one connection's reads.
struct HttpLimits {
  std::size_t max_header_bytes = 8192;       ///< request/status line + headers
  std::size_t max_body_bytes = 1 << 20;      ///< Content-Length ceiling
  double read_timeout_seconds = 30.0;        ///< per-read poll timeout
};

/// Reads one request off the socket. Returns false on a clean EOF before
/// the first byte (keep-alive peer went away — not an error). Throws
/// HttpError on malformed or over-limit input: 400 (bad request line /
/// headers / length), 413 (body over max_body_bytes), 431 (header section
/// over max_header_bytes), 408 (timed out mid-request).
bool read_http_request(Socket& socket, HttpRequest& out,
                       const HttpLimits& limits);

/// Serializes and sends a response (Content-Length framed, keep-alive).
/// Returns false when the peer vanished mid-write.
bool write_http_response(Socket& socket, const HttpResponse& response);

/// The status line + headers + blank line of a response, without the body.
/// The server sends head and body separately so the fault-injection
/// crash point `server_response` can kill the daemon between the two — a
/// half-written response on the wire is exactly what retrying clients must
/// survive.
std::string serialize_response_head(const HttpResponse& response);

/// Serializes and sends a request. `target` is the path plus any query
/// string, already encoded; `headers` are extra headers (e.g. X-Api-Key).
bool write_http_request(Socket& socket, const std::string& method,
                        const std::string& target, const std::string& body,
                        const std::map<std::string, std::string>& headers = {});

/// Reads one response. Throws HttpError(502) on a malformed or truncated
/// response, including EOF before the status line (a dropped connection —
/// retryable by the caller).
void read_http_response(Socket& socket, HttpResponse& out,
                        const HttpLimits& limits);

/// Canonical reason phrase of the statuses this server emits.
std::string status_reason(int status);

}  // namespace qarch::server
