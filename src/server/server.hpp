// qarchd: the networked, multi-tenant front door of search::EvalService.
//
// Everything behind the wire already exists — one EvalService dedups,
// caches, schedules fairly, preempts, checkpoints, and survives crashes
// (src/search/README.md). QarchServer is deliberately a THIN adapter in the
// OSRM routed/engine mold: it maps HTTP/JSON requests onto the service's
// submit/ticket surface and tenants onto the service's fair-share weighted
// queues, and adds only what a shared network endpoint needs on top:
//
//   * authentication — every /v1/* request carries an X-Api-Key header that
//     must match a configured tenant (401 otherwise);
//   * per-tenant fair share — each tenant registers one EvalClient queue
//     with its configured weight, so a greedy batch tenant cannot starve an
//     interactive one (the deficit-weighted round robin underneath does the
//     actual scheduling);
//   * admission control — a token-bucket rate limit (burst + refill/sec) and
//     a max-outstanding-tickets quota per tenant, both answered with 429
//     before any work is enqueued;
//   * wire safety — bounded request bodies (413), bounded header sections
//     (431), malformed JSON answered 400, long-polls capped so a connection
//     cannot pin an IO thread forever;
//   * graceful shutdown — stop() stops accepting, finishes in-flight
//     requests, then runs EvalService::drain(): running evaluations park at
//     their next safe point and checkpoints/caches persist, so a restarted
//     daemon on the same paths resumes mid-training.
//
// Protocol (full spec with examples in src/server/README.md):
//
//   POST /v1/submit            {graph|generator, mixer, p, budget?, engine?,
//                               priority?, deadline_ms?, objective?,
//                               cvar_alpha?, objective_shots?, hamiltonian?,
//                               mis_penalty?, ising_coupling?, ising_field?}
//                                                          -> 202 {ticket}
//   POST /v1/sample            {graph|generator, mixer, p, theta, shots,
//                               seed?, engine?, hamiltonian?, ...}
//                                                          -> 200 {samples,
//                                                              values, engine}
//   GET  /v1/result/<ticket>?wait_ms=N                     -> 200 {status,...}
//   POST /v1/cancel/<ticket>                               -> 200 {cancelled}
//   GET  /v1/stats                                         -> 200 {...}
//   GET  /healthz              (unauthenticated)           -> 200 {status:ok}
//
// Tickets are per-tenant: one tenant can never see or cancel another's
// ticket (the lookup answers 404, indistinguishable from "never existed").
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "search/eval_service.hpp"
#include "server/http.hpp"
#include "session.hpp"

namespace qarch::server {

/// One authenticated tenant of the daemon. Zero-valued limit fields inherit
/// the SessionConfig::server_* defaults; a fully zero spec (beyond name/key)
/// is an unlimited weight-1 tenant.
struct TenantSpec {
  std::string name;          ///< diagnostic label (also the EvalClient name)
  std::string api_key;       ///< value of the X-Api-Key header
  double weight = 1.0;       ///< fair-share weight of the tenant's queue
  double rate = -1.0;        ///< token refill per second (-1 = session default)
  double burst = -1.0;       ///< bucket capacity (-1 = session default,
                             ///< 0 = rate limiting off for this tenant)
  long max_inflight = -1;    ///< outstanding-ticket quota (-1 = session
                             ///< default, 0 = unlimited)

  /// Parses "name:key[:weight[:rate[:burst[:inflight]]]]" (the qarchd
  /// --tenants grammar). Throws InvalidArgument on malformed specs.
  static TenantSpec parse(const std::string& text);
};

/// Everything qarchd needs to run: the evaluation session plus the serving
/// surface.
struct ServerConfig {
  SessionConfig session;     ///< backend, workers, caches, robustness knobs,
                             ///< and the server_* wire defaults
  std::uint16_t port = 0;    ///< 0 = bind an ephemeral port (tests)
  std::vector<TenantSpec> tenants;  ///< must be non-empty to serve /v1/*
  /// Reject graphs with more vertices than this (a typo'd n=10000 submit
  /// must not OOM the statevector engine before auto-selection can decline).
  std::size_t max_vertices = 32;
};

/// The daemon. One instance owns one EvalService, one listening socket, and
/// the IO threads serving it. Thread-safe: handlers run concurrently on the
/// IO pool.
class QarchServer {
 public:
  explicit QarchServer(ServerConfig config);
  ~QarchServer();

  QarchServer(const QarchServer&) = delete;
  QarchServer& operator=(const QarchServer&) = delete;

  /// Binds the port and spawns the acceptor and IO threads. Throws Error
  /// when the port cannot be bound.
  void start();

  /// Graceful shutdown: stop accepting, finish in-flight requests (long
  /// polls return "pending" immediately), then drain the evaluation service
  /// (park + checkpoint + persist caches) waiting at most
  /// `drain_timeout_seconds` for running slices. Idempotent.
  void stop(double drain_timeout_seconds = 5.0);

  /// The bound port (the real one when config.port was 0). Valid after
  /// start().
  [[nodiscard]] std::uint16_t port() const;

  /// The service behind the front door (tests compare wire responses
  /// against direct submissions to an equally configured service).
  [[nodiscard]] search::EvalService& service() { return *service_; }

  /// Wire-level accounting (monotonic counters).
  struct Counters {
    std::size_t connections = 0;     ///< accepted sockets
    std::size_t requests = 0;        ///< requests parsed off the wire
    std::size_t bad_requests = 0;    ///< 400/413/431 answers
    std::size_t unauthorized = 0;    ///< 401 answers
    std::size_t rate_limited = 0;    ///< 429: token bucket empty
    std::size_t quota_rejected = 0;  ///< 429: outstanding-ticket quota
    std::size_t submits = 0;         ///< tickets issued
    std::size_t samples = 0;         ///< /v1/sample requests served
    std::size_t cancels = 0;         ///< cancel requests honoured
    std::size_t dropped = 0;         ///< connections dropped by fault
                                     ///< injection (QARCH_FAULT drop=)
  };
  [[nodiscard]] Counters counters() const;

  /// One request dispatched in-process, bypassing the socket layer — the
  /// protocol-conformance tests exercise handler logic through this without
  /// binding ports, and the socket tests prove the wire path separately.
  HttpResponse handle(const HttpRequest& request);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::unique_ptr<search::EvalService> service_;
};

/// Builds a graph::Graph from the submit payload's "graph" (n + edge list)
/// or "generator" (named family + parameters) form. Exposed for the client
/// library and tests; throws InvalidArgument on anything malformed.
graph::Graph graph_from_submit_json(const json::Value& body,
                                    std::size_t max_vertices);

}  // namespace qarch::server
