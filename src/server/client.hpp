// qarch_client: the typed client of the qarchd wire protocol.
//
// One class wraps the whole protocol (submit / result / cancel / stats /
// healthz) plus the two things every caller of a network service ends up
// hand-rolling:
//
//   * TRANSPORT RETRIES — connection refused, connection dropped mid-
//     exchange, truncated response: all retried with exponential backoff up
//     to ClientOptions::max_retries. Only transport trouble retries;
//     a parsed non-2xx answer is the daemon's verdict and throws ApiError
//     immediately.
//   * RESTART CONVERGENCE — evaluate() survives a daemon that crashed and
//     was restarted on the same cache/checkpoint paths: the new daemon has
//     forgotten the old ticket table (404), so evaluate() RESUBMITS the
//     same body. The service's result cache and in-flight dedup make the
//     resubmission converge to the same candidate instead of paying for a
//     second training run.
//
//   * KEEP-ALIVE — the socket of a successful exchange is kept open and
//     reused by the next request (qarchd serves persistent connections).
//     A reused socket that the daemon closed in the meantime is a normal
//     race, not an error: the request is retried once on a fresh
//     connection without consuming the retry budget or backing off.
//
// The client is deliberately synchronous (one request per call): the
// concurrency story lives server-side in EvalService, and callers that want
// parallel submits run parallel threads, as the stress test does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "common/json.hpp"
#include "graph/graph.hpp"
#include "search/evaluator.hpp"
#include "server/http.hpp"

namespace qarch::server {

/// A parsed non-2xx daemon answer: the HTTP status plus the "error" message
/// from the JSON body. NOT retried by the client — the daemon meant it.
class ApiError : public Error {
 public:
  ApiError(int status, const std::string& what) : Error(what), status_(status) {}
  [[nodiscard]] int status() const { return status_; }

 private:
  int status_;
};

/// Where and how to talk to a qarchd.
struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string api_key;                    ///< sent as X-Api-Key on /v1/*
  double connect_timeout_seconds = 5.0;
  /// Per-request read timeout. Must exceed the longest wait_ms long-poll
  /// the caller intends to issue.
  double request_timeout_seconds = 60.0;
  int max_retries = 8;                    ///< transport-level retry budget
  double retry_backoff_seconds = 0.05;    ///< base delay, doubled per retry
};

/// The typed qarchd client. Thread-compatible: use one instance per thread
/// (the cached keep-alive connection is per-instance mutable state).
class QarchClient {
 public:
  explicit QarchClient(ClientOptions options);

  /// GET /healthz (unauthenticated).
  json::Value healthz();

  /// GET /v1/stats.
  json::Value stats();

  /// POST /v1/submit with a raw body (see submit_body / README for the
  /// schema). Returns the ticket id. Throws ApiError on 4xx/5xx.
  std::string submit(const json::Value& body);

  /// GET /v1/result/<ticket>?wait_ms=N. Returns the whole response object
  /// ({ticket, status, result?, error?}).
  json::Value result(const std::string& ticket, double wait_ms = 0.0);

  /// POST /v1/cancel/<ticket>. True when the cancel landed before the
  /// evaluation started.
  bool cancel(const std::string& ticket);

  /// Submit-and-wait with restart convergence (see file comment): polls in
  /// `poll_wait_ms` long-poll slices until the ticket resolves, resubmitting
  /// the body when the daemon forgot the ticket (404 after a restart).
  /// Returns the evaluated candidate; throws ApiError when the job resolved
  /// cancelled / expired / failed.
  search::CandidateResult evaluate(const json::Value& body,
                                   double poll_wait_ms = 500.0);

  /// Builds the canonical submit body for an explicit graph: n + edge list,
  /// mixer string, depth, optional budget (0 = daemon default).
  static json::Value submit_body(const graph::Graph& g,
                                 const std::string& mixer, std::size_t p,
                                 std::size_t budget = 0);

  /// One raw request with auth, transport retries, and JSON parsing; the
  /// building block of everything above. Throws ApiError on a non-2xx
  /// answer, Error when the transport never yielded a response within the
  /// retry budget.
  json::Value request(const std::string& method, const std::string& target,
                      const std::string& body);

  [[nodiscard]] const ClientOptions& options() const { return options_; }

  /// How many TCP connections this client has opened — the keep-alive
  /// probe: N sequential requests on a healthy daemon open exactly one.
  [[nodiscard]] std::size_t connections_opened() const {
    return connections_opened_;
  }

 private:
  ClientOptions options_;
  std::optional<Socket> conn_;  ///< cached keep-alive connection
  std::size_t connections_opened_ = 0;
};

}  // namespace qarch::server
