// Statevector utilities: overlaps, fidelity, collapse, batched expectation
// sweeps, and distribution diagnostics used by tests and analysis tooling.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace qarch::sim {

/// One Z_u Z_v observable for the batched expectation sweep.
struct ZZPair {
  std::size_t u = 0;
  std::size_t v = 0;
};

/// All <Z_u Z_v> values in ONE pass over the state (vs one full-state pass
/// per pair with expectation_zz). Each amplitude's probability is computed
/// once and scattered into every term with a popcount-parity sign; with
/// `workers` > 1 the state is split into contiguous blocks whose per-thread
/// partial sums are combined in index order (deterministic). Returns values
/// aligned with `pairs`.
/// `use_simd = false` forces the scalar accumulation body (ablation/CI).
std::vector<double> batched_expectation_zz(
    const State& state, std::span<const ZZPair> pairs, std::size_t workers = 1,
    std::size_t parallel_threshold_qubits = 14, bool use_simd = true);

/// <a|b> — complex overlap of two equal-size states.
cplx overlap(const State& a, const State& b);

/// |<a|b>|^2 — fidelity between pure states.
double fidelity(const State& a, const State& b);

/// Measures qubit q (in place): samples the outcome, collapses and
/// renormalizes the state; returns the observed bit.
int measure_qubit(State& state, std::size_t q, Rng& rng);

/// Shannon entropy (bits) of the computational-basis distribution.
double measurement_entropy(const State& state);

/// Total variation distance between the basis distributions of two states.
double total_variation_distance(const State& a, const State& b);

}  // namespace qarch::sim
