// Statevector utilities: overlaps, fidelity, collapse, and distribution
// diagnostics used by tests and analysis tooling.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace qarch::sim {

/// <a|b> — complex overlap of two equal-size states.
cplx overlap(const State& a, const State& b);

/// |<a|b>|^2 — fidelity between pure states.
double fidelity(const State& a, const State& b);

/// Measures qubit q (in place): samples the outcome, collapses and
/// renormalizes the state; returns the observed bit.
int measure_qubit(State& state, std::size_t q, Rng& rng);

/// Shannon entropy (bits) of the computational-basis distribution.
double measurement_entropy(const State& state);

/// Total variation distance between the basis distributions of two states.
double total_variation_distance(const State& a, const State& b);

}  // namespace qarch::sim
