#include "sim/statevector.hpp"

#include <atomic>
#include <cmath>

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/simd.hpp"

namespace qarch::sim {

using linalg::Matrix;

State zero_state(std::size_t num_qubits) {
  QARCH_REQUIRE(num_qubits <= 30, "statevector limited to 30 qubits");
  State s(std::size_t{1} << num_qubits, cplx{0.0, 0.0});
  s[0] = 1.0;
  return s;
}

State plus_state(std::size_t num_qubits) {
  QARCH_REQUIRE(num_qubits <= 30, "statevector limited to 30 qubits");
  const std::size_t dim = std::size_t{1} << num_qubits;
  const double amp = 1.0 / std::sqrt(static_cast<double>(dim));
  return State(dim, cplx{amp, 0.0});
}

std::size_t state_qubits(const State& state) {
  QARCH_REQUIRE(!state.empty() && (state.size() & (state.size() - 1)) == 0,
                "state size must be a power of two");
  std::size_t n = 0;
  while ((std::size_t{1} << n) < state.size()) ++n;
  return n;
}

namespace {

std::atomic<std::uint64_t> g_expectation_sweeps{0};

}  // namespace

std::uint64_t expectation_sweep_count() {
  return g_expectation_sweeps.load(std::memory_order_relaxed);
}

void reset_expectation_sweep_count() {
  g_expectation_sweeps.store(0, std::memory_order_relaxed);
}

namespace detail {
void note_expectation_sweep() {
  g_expectation_sweeps.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

void kernel_single(State& state, std::size_t q, const cplx* m,
                   std::size_t workers, std::size_t parallel_threshold_qubits,
                   bool use_simd) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(q < n, "qubit out of range");
  const std::size_t pairs = state.size() / 2;
  cplx* z = state.data();

  if (workers > 1 && n >= parallel_threshold_qubits) {
    // Pair-index blocks; single_pair_range handles unaligned splits.
    parallel::parallel_for_blocks(
        0, pairs,
        [&](std::size_t klo, std::size_t khi) {
          simd::single_pair_range(z, q, m, klo, khi, use_simd);
        },
        workers, 2048);
  } else {
    simd::single_pair_range(z, q, m, 0, pairs, use_simd);
  }
}

void kernel_two(State& state, std::size_t q0, std::size_t q1, const cplx* m,
                std::size_t workers, std::size_t parallel_threshold_qubits) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(q0 < n && q1 < n && q0 != q1, "bad two-qubit target");
  const std::size_t quads = state.size() / 4;
  cplx* z = state.data();

  if (workers > 1 && n >= parallel_threshold_qubits) {
    parallel::parallel_for_blocks(
        0, quads,
        [&](std::size_t klo, std::size_t khi) {
          simd::two_quad_range(z, q0, q1, m, klo, khi);
        },
        workers, 1024);
  } else {
    simd::two_quad_range(z, q0, q1, m, 0, quads);
  }
}

void kernel_diag1(State& state, std::size_t q, cplx d0, cplx d1,
                  std::size_t workers, std::size_t parallel_threshold_qubits,
                  bool use_simd) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(q < n, "qubit out of range");
  cplx* z = state.data();

  if (workers > 1 && n >= parallel_threshold_qubits) {
    parallel::parallel_for_blocks(
        0, state.size(),
        [&](std::size_t lo, std::size_t hi) {
          simd::diag1_slice(z + lo, hi - lo, lo, q, d0, d1, use_simd);
        },
        workers, 4096);
  } else {
    simd::diag1_slice(z, state.size(), 0, q, d0, d1, use_simd);
  }
}

void kernel_diag2(State& state, std::size_t q0, std::size_t q1, const cplx* d,
                  std::size_t workers, std::size_t parallel_threshold_qubits,
                  bool use_simd) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(q0 < n && q1 < n && q0 != q1, "bad two-qubit target");
  cplx* z = state.data();

  if (workers > 1 && n >= parallel_threshold_qubits) {
    parallel::parallel_for_blocks(
        0, state.size(),
        [&](std::size_t lo, std::size_t hi) {
          simd::diag2_slice(z + lo, hi - lo, lo, q0, q1, d, use_simd);
        },
        workers, 4096);
  } else {
    simd::diag2_slice(z, state.size(), 0, q0, q1, d, use_simd);
  }
}

StatevectorSimulator::StatevectorSimulator(std::size_t workers,
                                           std::size_t parallel_threshold_qubits,
                                           bool use_simd)
    : workers_(workers == 0 ? 1 : workers),
      parallel_threshold_qubits_(parallel_threshold_qubits),
      use_simd_(use_simd) {}

void StatevectorSimulator::apply(State& state, const circuit::Gate& gate,
                                 std::span<const double> theta) const {
  const Matrix m = gate.matrix(theta);
  if (gate.arity() == 1)
    kernel_single(state, gate.q0, m.data().data(), workers_,
                  parallel_threshold_qubits_, use_simd_);
  else
    kernel_two(state, gate.q0, gate.q1, m.data().data(), workers_,
               parallel_threshold_qubits_);
}

State StatevectorSimulator::run(const circuit::Circuit& circuit,
                                std::span<const double> theta,
                                State initial) const {
  QARCH_REQUIRE(state_qubits(initial) == circuit.num_qubits(),
                "initial state qubit count mismatch");
  QARCH_REQUIRE(theta.size() >= circuit.num_params(),
                "parameter vector too short for circuit");
  for (const auto& g : circuit.gates()) apply(initial, g, theta);
  return initial;
}

State StatevectorSimulator::run_from_plus(const circuit::Circuit& circuit,
                                          std::span<const double> theta) const {
  return run(circuit, theta, plus_state(circuit.num_qubits()));
}

double expectation_zz(const State& state, std::size_t u, std::size_t v) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(u < n && v < n && u != v, "bad ZZ qubit pair");
  detail::note_expectation_sweep();
  const std::size_t mu = std::size_t{1} << u, mv = std::size_t{1} << v;
  double e = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    const bool bu = (i & mu) != 0, bv = (i & mv) != 0;
    const double sign = (bu == bv) ? 1.0 : -1.0;
    e += sign * std::norm(state[i]);
  }
  return e;
}

double expectation_z(const State& state, std::size_t q) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(q < n, "qubit out of range");
  detail::note_expectation_sweep();
  const std::size_t mq = std::size_t{1} << q;
  double e = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i)
    e += ((i & mq) ? -1.0 : 1.0) * std::norm(state[i]);
  return e;
}

double probability(const State& state, std::size_t basis_index) {
  QARCH_REQUIRE(basis_index < state.size(), "basis index out of range");
  return std::norm(state[basis_index]);
}

}  // namespace qarch::sim
