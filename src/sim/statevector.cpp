#include "sim/statevector.hpp"

#include <atomic>
#include <cmath>

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"

namespace qarch::sim {

using linalg::Matrix;

State zero_state(std::size_t num_qubits) {
  QARCH_REQUIRE(num_qubits <= 30, "statevector limited to 30 qubits");
  State s(std::size_t{1} << num_qubits, cplx{0.0, 0.0});
  s[0] = 1.0;
  return s;
}

State plus_state(std::size_t num_qubits) {
  QARCH_REQUIRE(num_qubits <= 30, "statevector limited to 30 qubits");
  const std::size_t dim = std::size_t{1} << num_qubits;
  const double amp = 1.0 / std::sqrt(static_cast<double>(dim));
  return State(dim, cplx{amp, 0.0});
}

std::size_t state_qubits(const State& state) {
  QARCH_REQUIRE(!state.empty() && (state.size() & (state.size() - 1)) == 0,
                "state size must be a power of two");
  std::size_t n = 0;
  while ((std::size_t{1} << n) < state.size()) ++n;
  return n;
}

namespace {

std::atomic<std::uint64_t> g_expectation_sweeps{0};

}  // namespace

std::uint64_t expectation_sweep_count() {
  return g_expectation_sweeps.load(std::memory_order_relaxed);
}

void reset_expectation_sweep_count() {
  g_expectation_sweeps.store(0, std::memory_order_relaxed);
}

namespace detail {
void note_expectation_sweep() {
  g_expectation_sweeps.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

void kernel_single(State& state, std::size_t q, const cplx* m,
                   std::size_t workers,
                   std::size_t parallel_threshold_qubits) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(q < n, "qubit out of range");
  const std::size_t mask = std::size_t{1} << q;
  const cplx m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
  const std::size_t pairs = state.size() / 2;

  auto body = [&](std::size_t k) {
    // Expand k to the index with bit q forced to 0.
    const std::size_t low = k & (mask - 1);
    const std::size_t i0 = ((k ^ low) << 1) | low;
    const std::size_t i1 = i0 | mask;
    const cplx a = state[i0], b = state[i1];
    state[i0] = m00 * a + m01 * b;
    state[i1] = m10 * a + m11 * b;
  };

  if (workers > 1 && n >= parallel_threshold_qubits) {
    parallel::parallel_for(0, pairs, body, workers, 1024);
  } else {
    for (std::size_t k = 0; k < pairs; ++k) body(k);
  }
}

void kernel_two(State& state, std::size_t q0, std::size_t q1, const cplx* m,
                std::size_t workers, std::size_t parallel_threshold_qubits) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(q0 < n && q1 < n && q0 != q1, "bad two-qubit target");
  const std::size_t mask0 = std::size_t{1} << q0;  // high bit of the 4x4 basis
  const std::size_t mask1 = std::size_t{1} << q1;  // low bit
  const std::size_t lo_mask = std::min(mask0, mask1) - 1;
  const std::size_t mid_mask =
      (std::max(mask0, mask1) - 1) ^ lo_mask ^ std::min(mask0, mask1);
  const std::size_t quads = state.size() / 4;

  auto body = [&](std::size_t k) {
    // Spread k across the two bit holes (q0 and q1 forced to 0).
    const std::size_t low = k & lo_mask;
    const std::size_t mid = (k << 1) & mid_mask;
    const std::size_t high =
        ((k << 2) & ~(lo_mask | mid_mask | mask0 | mask1));
    const std::size_t base = high | mid | low;
    const std::size_t i00 = base;
    const std::size_t i01 = base | mask1;
    const std::size_t i10 = base | mask0;
    const std::size_t i11 = base | mask0 | mask1;
    const cplx v0 = state[i00], v1 = state[i01], v2 = state[i10],
               v3 = state[i11];
    state[i00] = m[0] * v0 + m[1] * v1 + m[2] * v2 + m[3] * v3;
    state[i01] = m[4] * v0 + m[5] * v1 + m[6] * v2 + m[7] * v3;
    state[i10] = m[8] * v0 + m[9] * v1 + m[10] * v2 + m[11] * v3;
    state[i11] = m[12] * v0 + m[13] * v1 + m[14] * v2 + m[15] * v3;
  };

  if (workers > 1 && n >= parallel_threshold_qubits) {
    parallel::parallel_for(0, quads, body, workers, 512);
  } else {
    for (std::size_t k = 0; k < quads; ++k) body(k);
  }
}

void kernel_diag1(State& state, std::size_t q, cplx d0, cplx d1,
                  std::size_t workers,
                  std::size_t parallel_threshold_qubits) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(q < n, "qubit out of range");
  // Branchless phase select (a conditional on a state-dependent bit would
  // mispredict constantly across the sweep).
  const cplx dd[2] = {d0, d1};

  auto body = [&](std::size_t i) { state[i] *= dd[(i >> q) & 1]; };

  if (workers > 1 && n >= parallel_threshold_qubits) {
    parallel::parallel_for(0, state.size(), body, workers, 4096);
  } else {
    for (std::size_t i = 0; i < state.size(); ++i) body(i);
  }
}

void kernel_diag2(State& state, std::size_t q0, std::size_t q1, const cplx* d,
                  std::size_t workers,
                  std::size_t parallel_threshold_qubits) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(q0 < n && q1 < n && q0 != q1, "bad two-qubit target");
  const cplx dd[4] = {d[0], d[1], d[2], d[3]};

  auto body = [&](std::size_t i) {
    const std::size_t sel = (((i >> q0) & 1) << 1) | ((i >> q1) & 1);
    state[i] *= dd[sel];
  };

  if (workers > 1 && n >= parallel_threshold_qubits) {
    parallel::parallel_for(0, state.size(), body, workers, 4096);
  } else {
    for (std::size_t i = 0; i < state.size(); ++i) body(i);
  }
}

StatevectorSimulator::StatevectorSimulator(std::size_t workers,
                                           std::size_t parallel_threshold_qubits)
    : workers_(workers == 0 ? 1 : workers),
      parallel_threshold_qubits_(parallel_threshold_qubits) {}

void StatevectorSimulator::apply(State& state, const circuit::Gate& gate,
                                 std::span<const double> theta) const {
  const Matrix m = gate.matrix(theta);
  if (gate.arity() == 1)
    kernel_single(state, gate.q0, m.data().data(), workers_,
                  parallel_threshold_qubits_);
  else
    kernel_two(state, gate.q0, gate.q1, m.data().data(), workers_,
               parallel_threshold_qubits_);
}

State StatevectorSimulator::run(const circuit::Circuit& circuit,
                                std::span<const double> theta,
                                State initial) const {
  QARCH_REQUIRE(state_qubits(initial) == circuit.num_qubits(),
                "initial state qubit count mismatch");
  QARCH_REQUIRE(theta.size() >= circuit.num_params(),
                "parameter vector too short for circuit");
  for (const auto& g : circuit.gates()) apply(initial, g, theta);
  return initial;
}

State StatevectorSimulator::run_from_plus(const circuit::Circuit& circuit,
                                          std::span<const double> theta) const {
  return run(circuit, theta, plus_state(circuit.num_qubits()));
}

double expectation_zz(const State& state, std::size_t u, std::size_t v) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(u < n && v < n && u != v, "bad ZZ qubit pair");
  detail::note_expectation_sweep();
  const std::size_t mu = std::size_t{1} << u, mv = std::size_t{1} << v;
  double e = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    const bool bu = (i & mu) != 0, bv = (i & mv) != 0;
    const double sign = (bu == bv) ? 1.0 : -1.0;
    e += sign * std::norm(state[i]);
  }
  return e;
}

double expectation_z(const State& state, std::size_t q) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(q < n, "qubit out of range");
  detail::note_expectation_sweep();
  const std::size_t mq = std::size_t{1} << q;
  double e = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i)
    e += ((i & mq) ? -1.0 : 1.0) * std::norm(state[i]);
  return e;
}

double probability(const State& state, std::size_t basis_index) {
  QARCH_REQUIRE(basis_index < state.size(), "basis index out of range");
  return std::norm(state[basis_index]);
}

}  // namespace qarch::sim
