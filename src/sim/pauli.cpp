#include "sim/pauli.hpp"

#include <complex>

#include "common/error.hpp"

namespace qarch::sim {

PauliString::PauliString(std::size_t num_qubits, double coefficient)
    : ops_(num_qubits, Pauli::I), coefficient_(coefficient) {
  QARCH_REQUIRE(num_qubits >= 1, "Pauli string needs at least one qubit");
}

PauliString PauliString::parse(const std::string& text, double coefficient) {
  QARCH_REQUIRE(!text.empty(), "empty Pauli string");
  PauliString p(text.size(), coefficient);
  for (std::size_t q = 0; q < text.size(); ++q) {
    switch (text[q]) {
      case 'I': p.set(q, Pauli::I); break;
      case 'X': p.set(q, Pauli::X); break;
      case 'Y': p.set(q, Pauli::Y); break;
      case 'Z': p.set(q, Pauli::Z); break;
      default:
        throw InvalidArgument(std::string("bad Pauli character '") + text[q] +
                              "'");
    }
  }
  return p;
}

void PauliString::set(std::size_t qubit, Pauli op) {
  QARCH_REQUIRE(qubit < ops_.size(), "qubit out of range");
  ops_[qubit] = op;
}

Pauli PauliString::get(std::size_t qubit) const {
  QARCH_REQUIRE(qubit < ops_.size(), "qubit out of range");
  return ops_[qubit];
}

std::size_t PauliString::weight() const {
  std::size_t w = 0;
  for (Pauli p : ops_)
    if (p != Pauli::I) ++w;
  return w;
}

void PauliString::apply(State& state) const {
  QARCH_REQUIRE(state_qubits(state) == ops_.size(),
                "state/Pauli size mismatch");
  // P|i> = phase(i) |i ^ flip_mask>: X and Y flip the bit; Y and Z add
  // bit-dependent phases. Compute masks once, then permute amplitudes.
  std::size_t flip_mask = 0;
  std::size_t z_mask = 0;   // bits whose value 1 contributes a -1 (Z part)
  std::size_t y_mask = 0;   // Y factors contribute an extra ±i
  for (std::size_t q = 0; q < ops_.size(); ++q) {
    const std::size_t bit = std::size_t{1} << q;
    switch (ops_[q]) {
      case Pauli::I: break;
      case Pauli::X: flip_mask |= bit; break;
      case Pauli::Y: flip_mask |= bit; y_mask |= bit; break;
      case Pauli::Z: z_mask |= bit; break;
    }
  }

  State out(state.size());
  const std::size_t y_count = static_cast<std::size_t>(
      __builtin_popcountll(static_cast<unsigned long long>(y_mask)));
  // Global phase from Y = i·XZ: each Y contributes a factor i times the
  // per-bit sign handled below. i^y_count cycles with period 4.
  static const cplx kIPow[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  const cplx global = kIPow[y_count % 4];

  for (std::size_t i = 0; i < state.size(); ++i) {
    const std::size_t j = i ^ flip_mask;
    // Sign: Z factors see bit of i; Y factors (as i·X·Z) see the PRE-flip
    // bit too (Z acts first).
    const std::size_t signed_bits = i & (z_mask | y_mask);
    const int parity = __builtin_popcountll(
                           static_cast<unsigned long long>(signed_bits)) & 1;
    const double sign = parity ? -1.0 : 1.0;
    out[j] = coefficient_ * global * sign * state[i];
  }
  state = std::move(out);
}

double PauliString::expectation(const State& state) const {
  State copy = state;
  apply(copy);
  const cplx e = linalg::inner(state, copy);
  QARCH_CHECK(std::abs(e.imag()) < 1e-9,
              "Hermitian Pauli expectation has imaginary part");
  return e.real();
}

std::string PauliString::to_string() const {
  std::string s;
  s.reserve(ops_.size());
  for (Pauli p : ops_) s += static_cast<char>(p);
  return s;
}

void PauliSum::add(PauliString term) {
  if (!terms_.empty())
    QARCH_REQUIRE(term.num_qubits() == terms_.front().num_qubits(),
                  "PauliSum terms must share qubit count");
  terms_.push_back(std::move(term));
}

double PauliSum::expectation(const State& state) const {
  double e = 0.0;
  for (const PauliString& t : terms_) e += t.expectation(state);
  return e;
}

}  // namespace qarch::sim
