// Pauli strings and their expectation values.
//
// Generalizes the <Z_u Z_v> machinery: arbitrary tensor products of
// {I, X, Y, Z} with real coefficients form the observables a cost function
// can be built from. Used by tests as an independent oracle and by users who
// want objectives beyond max-cut.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/statevector.hpp"

namespace qarch::sim {

/// Single-qubit Pauli operator label.
enum class Pauli : char { I = 'I', X = 'X', Y = 'Y', Z = 'Z' };

/// A Pauli string: one Pauli per qubit, e.g. "IZXZ" (qubit 0 is the first
/// character), with an optional real coefficient.
class PauliString {
 public:
  /// Identity string on n qubits.
  explicit PauliString(std::size_t num_qubits, double coefficient = 1.0);

  /// Parses "XIZY"-style text (qubit q = character q).
  static PauliString parse(const std::string& text, double coefficient = 1.0);

  [[nodiscard]] std::size_t num_qubits() const { return ops_.size(); }
  [[nodiscard]] double coefficient() const { return coefficient_; }

  /// Sets the operator on one qubit.
  void set(std::size_t qubit, Pauli op);
  [[nodiscard]] Pauli get(std::size_t qubit) const;

  /// Number of non-identity factors.
  [[nodiscard]] std::size_t weight() const;

  /// Applies the string to a state (in place): |ψ> -> coeff · P|ψ>.
  void apply(State& state) const;

  /// <ψ| coeff · P |ψ>. Cost O(2^n · weight) without building matrices.
  [[nodiscard]] double expectation(const State& state) const;

  /// "ZIXY" text form (coefficient not included).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Pauli> ops_;
  double coefficient_;
};

/// A real linear combination of Pauli strings (a Hermitian observable).
class PauliSum {
 public:
  PauliSum() = default;

  /// Adds a term; all terms must agree on qubit count.
  void add(PauliString term);

  [[nodiscard]] std::size_t num_terms() const { return terms_.size(); }
  [[nodiscard]] const std::vector<PauliString>& terms() const { return terms_; }

  /// Sum of the term expectations.
  [[nodiscard]] double expectation(const State& state) const;

 private:
  std::vector<PauliString> terms_;
};

}  // namespace qarch::sim
