#include "sim/sim_program.hpp"

#include <bit>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <utility>

#include <atomic>

#include "circuit/optimizer.hpp"
#include "common/error.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/simd.hpp"

namespace qarch::sim {

using circuit::Gate;
using circuit::GateKind;
using linalg::Matrix;

namespace {

/// Diagonal entries (d0, d1) of a single-qubit diagonal gate — computed
/// directly, no Matrix allocation.
std::array<cplx, 2> diag1_entries(GateKind kind, double angle) {
  const cplx i{0.0, 1.0};
  constexpr double kPi = 3.14159265358979323846;
  switch (kind) {
    case GateKind::I:   return {cplx{1, 0}, cplx{1, 0}};
    case GateKind::Z:   return {cplx{1, 0}, cplx{-1, 0}};
    case GateKind::S:   return {cplx{1, 0}, i};
    case GateKind::Sdg: return {cplx{1, 0}, -i};
    case GateKind::T:   return {cplx{1, 0}, std::exp(i * (kPi / 4))};
    case GateKind::Tdg: return {cplx{1, 0}, std::exp(-i * (kPi / 4))};
    case GateKind::RZ:
      return {std::exp(-i * (angle / 2)), std::exp(i * (angle / 2))};
    case GateKind::P:   return {cplx{1, 0}, std::exp(i * angle)};
    default:
      throw InternalError("diag1_entries: gate is not single-qubit diagonal");
  }
}

/// Diagonal entries of a two-qubit diagonal gate, indexed by
/// (bit_q0 << 1) | bit_q1 in the GATE's own qubit orientation.
std::array<cplx, 4> diag2_entries(GateKind kind, double angle) {
  const cplx i{0.0, 1.0};
  switch (kind) {
    case GateKind::CZ:
      return {cplx{1, 0}, cplx{1, 0}, cplx{1, 0}, cplx{-1, 0}};
    case GateKind::RZZ: {
      const cplx em = std::exp(-i * (angle / 2)), ep = std::exp(i * (angle / 2));
      return {em, ep, ep, em};
    }
    default:
      throw InternalError("diag2_entries: gate is not two-qubit diagonal");
  }
}

/// Row-major 2x2 entries of any single-qubit gate — direct formulas for the
/// parameterized kinds, the cached static matrix for fixed kinds.
std::array<cplx, 4> single_entries(GateKind kind, double angle) {
  const cplx i{0.0, 1.0};
  switch (kind) {
    case GateKind::RX: {
      const double c = std::cos(angle / 2), s = std::sin(angle / 2);
      return {cplx{c, 0}, -i * s, -i * s, cplx{c, 0}};
    }
    case GateKind::RY: {
      const double c = std::cos(angle / 2), s = std::sin(angle / 2);
      return {cplx{c, 0}, cplx{-s, 0}, cplx{s, 0}, cplx{c, 0}};
    }
    case GateKind::RZ:
    case GateKind::P: {
      const auto d = diag1_entries(kind, angle);
      return {d[0], cplx{0, 0}, cplx{0, 0}, d[1]};
    }
    default: {
      const Matrix& m = circuit::fixed_gate_matrix(kind);
      return {m(0, 0), m(0, 1), m(1, 0), m(1, 1)};
    }
  }
}

/// Computes an op's coefficients for one theta. Used once at compile time
/// for non-parameterized ops and per run() for parameterized ones.
std::array<cplx, 16> bind_op(const CompiledOp& op,
                             std::span<const double> theta) {
  std::array<cplx, 16> out{};
  switch (op.kind) {
    case CompiledOp::Kind::DiagTable:
      throw InternalError("DiagTable ops bind a per-class lookup, not coeffs");
    case CompiledOp::Kind::Diag1: {
      cplx d0{1, 0}, d1{1, 0};
      for (const Gate& g : op.sources) {
        const auto e = diag1_entries(g.kind, g.param.value(theta));
        d0 *= e[0];
        d1 *= e[1];
      }
      out[0] = d0;
      out[1] = d1;
      return out;
    }
    case CompiledOp::Kind::Diag2: {
      out[0] = out[1] = out[2] = out[3] = cplx{1, 0};
      for (const Gate& g : op.sources) {
        auto e = diag2_entries(g.kind, g.param.value(theta));
        // Remap when the source is oriented (q1, q0) relative to the op:
        // swapping the qubits swaps the |01> and |10> entries.
        if (g.q0 != op.q0) std::swap(e[1], e[2]);
        for (std::size_t k = 0; k < 4; ++k) out[k] *= e[k];
      }
      return out;
    }
    case CompiledOp::Kind::Single: {
      // Product m_last * ... * m_first of the fused run (2x2 matmuls).
      std::array<cplx, 4> acc = {cplx{1, 0}, cplx{0, 0}, cplx{0, 0},
                                 cplx{1, 0}};
      for (const Gate& g : op.sources) {
        const auto m = single_entries(g.kind, g.param.value(theta));
        const std::array<cplx, 4> prev = acc;
        acc[0] = m[0] * prev[0] + m[1] * prev[2];
        acc[1] = m[0] * prev[1] + m[1] * prev[3];
        acc[2] = m[2] * prev[0] + m[3] * prev[2];
        acc[3] = m[2] * prev[1] + m[3] * prev[3];
      }
      for (std::size_t k = 0; k < 4; ++k) out[k] = acc[k];
      return out;
    }
    case CompiledOp::Kind::Two: {
      QARCH_CHECK(op.sources.size() == 1, "dense two-qubit op fuses nothing");
      const Gate& g = op.sources.front();
      if (!circuit::is_parameterized(g.kind)) {
        const Matrix& m = circuit::fixed_gate_matrix(g.kind);
        for (std::size_t k = 0; k < 16; ++k) out[k] = m.data()[k];
      } else {
        const Matrix m = g.matrix(theta);
        for (std::size_t k = 0; k < 16; ++k) out[k] = m.data()[k];
      }
      return out;
    }
  }
  throw InternalError("unhandled compiled-op kind");
}

bool any_symbolic(const std::vector<Gate>& gates) {
  for (const Gate& g : gates)
    if (g.param.kind == circuit::ParamExpr::Kind::Symbol) return true;
  return false;
}

// -- phase-table folding -----------------------------------------------------
//
// Every diagonal gate here has unit-modulus entries whose phase ANGLE is
// affine in the bound parameter: angle(sel) = factor(sel) * theta for
// RZ/P/RZZ (no intercept) and a constant for Z/S/Sdg/T/Tdg/CZ/I. A run of
// consecutive diagonal ops therefore applies, per amplitude i,
//   state[i] *= exp(i * (base(i) + coef(i) * theta_sym))
// where base/coef depend only on circuit structure. We bake the distinct
// (base, coef) pairs into a per-amplitude class table once at compile time;
// a new theta then costs one exp() per CLASS (e.g. 41 classes for a 40-edge
// unweighted cost layer) plus a single streaming multiply pass.

bool is_diag_op(const CompiledOp& op) {
  return op.kind == CompiledOp::Kind::Diag1 ||
         op.kind == CompiledOp::Kind::Diag2;
}

struct AngleKeyHash {
  std::size_t operator()(const std::pair<double, double>& p) const {
    const auto a = std::bit_cast<std::uint64_t>(p.first);
    const auto b = std::bit_cast<std::uint64_t>(p.second);
    std::uint64_t h = a * 0x9e3779b97f4a7c15ULL;
    h ^= b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// Builds one DiagTable op replacing the diagonal ops in `run`, or nullopt
/// when the run is ineligible (more than one distinct symbolic parameter,
/// or more phase classes than the table can index).
std::optional<CompiledOp> build_phase_table(
    std::span<const CompiledOp> run, std::size_t num_qubits) {
  bool has_sym = false;
  std::size_t sym_index = 0;
  for (const CompiledOp& op : run) {
    for (const Gate& g : op.sources) {
      if (g.param.kind != circuit::ParamExpr::Kind::Symbol) continue;
      if (!has_sym) {
        has_sym = true;
        sym_index = g.param.index;
      } else if (g.param.index != sym_index) {
        return std::nullopt;
      }
    }
  }

  const std::size_t dim = std::size_t{1} << num_qubits;
  std::vector<double> base(dim, 0.0), coef(dim, 0.0);
  for (const CompiledOp& op : run) {
    for (const Gate& g : op.sources) {
      // Per-selector decomposition angle(sel) = bconst[sel] + bscale[sel]*θ.
      double bconst[4] = {0, 0, 0, 0}, bscale[4] = {0, 0, 0, 0};
      const std::size_t sels = g.arity() == 1 ? 2 : 4;
      if (circuit::is_parameterized(g.kind)) {
        double factor[4] = {0, 0, 0, 0};
        if (g.arity() == 1) {
          const auto e = diag1_entries(g.kind, 1.0);
          factor[0] = std::arg(e[0]);
          factor[1] = std::arg(e[1]);
        } else {
          const auto e = diag2_entries(g.kind, 1.0);
          for (std::size_t s = 0; s < 4; ++s) factor[s] = std::arg(e[s]);
        }
        switch (g.param.kind) {
          case circuit::ParamExpr::Kind::None:
            break;  // angle 0 contributes nothing
          case circuit::ParamExpr::Kind::Constant:
            for (std::size_t s = 0; s < sels; ++s)
              bconst[s] = factor[s] * g.param.constant;
            break;
          case circuit::ParamExpr::Kind::Symbol:
            for (std::size_t s = 0; s < sels; ++s)
              bscale[s] = factor[s] * g.param.scale;
            break;
        }
      } else if (g.arity() == 1) {
        const auto e = diag1_entries(g.kind, 0.0);
        bconst[0] = std::arg(e[0]);
        bconst[1] = std::arg(e[1]);
      } else {
        const auto e = diag2_entries(g.kind, 0.0);
        for (std::size_t s = 0; s < 4; ++s) bconst[s] = std::arg(e[s]);
      }

      if (g.arity() == 1) {
        const std::size_t q = g.q0;
        for (std::size_t i = 0; i < dim; ++i) {
          const std::size_t sel = (i >> q) & 1;
          base[i] += bconst[sel];
          coef[i] += bscale[sel];
        }
      } else {
        const std::size_t q0 = g.q0, q1 = g.q1;
        for (std::size_t i = 0; i < dim; ++i) {
          const std::size_t sel = (((i >> q0) & 1) << 1) | ((i >> q1) & 1);
          base[i] += bconst[sel];
          coef[i] += bscale[sel];
        }
      }
    }
  }

  CompiledOp out;
  out.kind = CompiledOp::Kind::DiagTable;
  out.has_symbol = has_sym;
  out.symbol_index = sym_index;
  out.parameterized = has_sym;
  out.classes.resize(dim);
  std::unordered_map<std::pair<double, double>, std::uint16_t, AngleKeyHash>
      ids;
  for (std::size_t i = 0; i < dim; ++i) {
    const std::pair<double, double> key{base[i], coef[i]};
    auto it = ids.find(key);
    if (it == ids.end()) {
      if (ids.size() >= 65535) return std::nullopt;  // table cannot index
      it = ids.emplace(key, static_cast<std::uint16_t>(ids.size())).first;
      out.class_const.push_back(key.first);
      out.class_scale.push_back(key.second);
    }
    out.classes[i] = it->second;
  }
  if (!has_sym) {
    // Fully constant run: bake the per-class phases once at compile time.
    out.lut.resize(out.class_const.size());
    for (std::size_t c = 0; c < out.lut.size(); ++c)
      out.lut[c] = std::polar(1.0, out.class_const[c]);
  }
  for (const CompiledOp& op : run)
    out.sources.insert(out.sources.end(), op.sources.begin(),
                       op.sources.end());
  return out;
}

/// Replaces each eligible run of >= 2 diagonal ops with one DiagTable op.
/// A run may extend past intervening non-diagonal ops on DISJOINT qubits
/// (they commute, so the gathered diagonals legally move to the run's start);
/// any op touching a qubit blocks it for the rest of the gather.
std::vector<CompiledOp> fold_phase_tables(std::vector<CompiledOp> ops,
                                          std::size_t num_qubits) {
  std::vector<CompiledOp> out;
  out.reserve(ops.size());
  std::size_t i = 0;
  while (i < ops.size()) {
    if (!is_diag_op(ops[i])) {
      out.push_back(std::move(ops[i++]));
      continue;
    }
    std::vector<CompiledOp> run, skipped;
    std::vector<bool> blocked(num_qubits, false);
    std::size_t free_qubits = num_qubits;
    std::size_t j = i;
    for (; j < ops.size() && free_qubits > 0; ++j) {
      CompiledOp& op = ops[j];
      const bool two = op.kind != CompiledOp::Kind::Diag1 &&
                       op.kind != CompiledOp::Kind::Single;
      const bool touches_blocked =
          blocked[op.q0] || (two && blocked[op.q1]);
      if (is_diag_op(op) && !touches_blocked) {
        run.push_back(std::move(op));
        continue;
      }
      // Every skipped op blocks its qubits: later gathered diagonals are
      // disjoint from it and every earlier skipped op, so hoisting them to
      // the run's start preserves the circuit's action.
      if (!blocked[op.q0]) { blocked[op.q0] = true; --free_qubits; }
      if (two && !blocked[op.q1]) { blocked[op.q1] = true; --free_qubits; }
      skipped.push_back(std::move(op));
    }
    std::optional<CompiledOp> table;
    if (run.size() >= 2)
      table = build_phase_table(
          std::span<const CompiledOp>(run.data(), run.size()), num_qubits);
    if (table.has_value()) {
      out.push_back(std::move(*table));
    } else {
      // Ineligible: keep the gathered diagonals as plain streaming ops.
      // Emitting them before the skipped tail is still action-preserving —
      // each gathered op is disjoint from every skipped op it moved past.
      for (auto& op : run) out.push_back(std::move(op));
    }
    for (auto& op : skipped) out.push_back(std::move(op));
    i = j;
  }
  return out;
}

/// True when the op can run inside one 2^block_qubits-amplitude block
/// without touching any other block: diagonal ops are elementwise (any
/// qubits), dense ops only mix amplitudes within a block when every target
/// bit lies below the block boundary.
bool op_is_blockable(const CompiledOp& op, std::size_t block_qubits) {
  switch (op.kind) {
    case CompiledOp::Kind::Diag1:
    case CompiledOp::Kind::Diag2:
    case CompiledOp::Kind::DiagTable:
      return true;
    case CompiledOp::Kind::Single:
      return op.q0 < block_qubits;
    case CompiledOp::Kind::Two:
      return op.q0 < block_qubits && op.q1 < block_qubits;
  }
  return false;
}

std::atomic<std::uint64_t> g_program_compiles{0};

}  // namespace

std::uint64_t program_compile_count() {
  return g_program_compiles.load(std::memory_order_relaxed);
}

void reset_program_compile_count() {
  g_program_compiles.store(0, std::memory_order_relaxed);
}

SimProgram::SimProgram(const circuit::Circuit& circuit, PlanOptions options)
    : num_qubits_(circuit.num_qubits()),
      num_params_(circuit.num_params()),
      options_(options) {
  circuit::Circuit simplified;
  const circuit::Circuit* source = &circuit;
  if (options_.presimplify) {
    simplified = circuit::optimize(circuit);
    source = &simplified;
  }
  stats_.source_gates = source->num_gates();

  // Emits one op for a fused run of single-qubit gates on one wire.
  const auto emit_single_run = [&](std::vector<Gate>& run) {
    if (run.empty()) return;
    CompiledOp op;
    op.q0 = run.front().q0;
    bool all_diagonal = true;
    for (const Gate& g : run)
      if (!circuit::is_diagonal(g.kind)) all_diagonal = false;
    op.kind = (all_diagonal && options_.diagonal_kernels)
                  ? CompiledOp::Kind::Diag1
                  : CompiledOp::Kind::Single;
    op.parameterized = any_symbolic(run);
    op.sources = std::move(run);
    run.clear();
    if (!op.parameterized) op.coeffs = bind_op(op, {});
    ops_.push_back(std::move(op));
  };

  std::vector<std::vector<Gate>> pending(num_qubits_);

  for (const Gate& g : source->gates()) {
    if (g.arity() == 1) {
      if (options_.fuse_single_qubit) {
        pending[g.q0].push_back(g);
      } else {
        std::vector<Gate> run{g};
        emit_single_run(run);
      }
      continue;
    }

    if (circuit::is_diagonal(g.kind) && options_.diagonal_kernels &&
        options_.phase_tables &&
        num_qubits_ <= options_.phase_table_max_qubits) {
      // Flush every pending single-qubit run, not just this gate's wires:
      // a two-qubit diagonal gate usually starts a cost layer, and keeping
      // that layer contiguous lets the phase-table fold absorb it whole.
      // (Emitting a pending run early is always valid — it only moves
      // across ops on disjoint wires.)
      for (auto& run : pending) emit_single_run(run);
    } else {
      emit_single_run(pending[g.q0]);
      emit_single_run(pending[g.q1]);
    }

    if (circuit::is_diagonal(g.kind) && options_.diagonal_kernels) {
      // Consecutive diagonal gates on the same (unordered) pair merge into
      // one streaming op — diagonal matrices commute and multiply entrywise.
      if (!ops_.empty()) {
        CompiledOp& back = ops_.back();
        const bool same_pair =
            back.kind == CompiledOp::Kind::Diag2 &&
            ((back.q0 == g.q0 && back.q1 == g.q1) ||
             (back.q0 == g.q1 && back.q1 == g.q0));
        if (same_pair) {
          back.sources.push_back(g);
          back.parameterized = any_symbolic(back.sources);
          if (!back.parameterized) back.coeffs = bind_op(back, {});
          continue;
        }
      }
      CompiledOp op;
      op.kind = CompiledOp::Kind::Diag2;
      op.q0 = g.q0;
      op.q1 = g.q1;
      op.parameterized = g.param.kind == circuit::ParamExpr::Kind::Symbol;
      op.sources = {g};
      if (!op.parameterized) op.coeffs = bind_op(op, {});
      ops_.push_back(std::move(op));
    } else {
      CompiledOp op;
      op.kind = CompiledOp::Kind::Two;
      op.q0 = g.q0;
      op.q1 = g.q1;
      op.parameterized = g.param.kind == circuit::ParamExpr::Kind::Symbol;
      op.sources = {g};
      if (!op.parameterized) op.coeffs = bind_op(op, {});
      ops_.push_back(std::move(op));
    }
  }

  for (auto& run : pending) emit_single_run(run);

  if (options_.diagonal_kernels && options_.phase_tables &&
      num_qubits_ <= options_.phase_table_max_qubits) {
    // Folding a run shrinks ops_, which can bring further diagonal ops into
    // adjacency; iterate to a fixed point (a handful of rounds at most).
    for (int round = 0; round < 4; ++round) {
      const std::size_t before = ops_.size();
      ops_ = fold_phase_tables(std::move(ops_), num_qubits_);
      if (ops_.size() == before) break;
    }
  }

  stats_.ops = ops_.size();
  for (const CompiledOp& op : ops_) {
    switch (op.kind) {
      case CompiledOp::Kind::Diag1: ++stats_.diag1_ops; break;
      case CompiledOp::Kind::Diag2: ++stats_.diag2_ops; break;
      case CompiledOp::Kind::DiagTable: ++stats_.diag_table_ops; break;
      case CompiledOp::Kind::Single: ++stats_.single_ops; break;
      case CompiledOp::Kind::Two: ++stats_.two_ops; break;
    }
    if (op.sources.size() > 1) stats_.fused_gates += op.sources.size();
  }

  // Partition the op list into replay groups. Blocking only pays when the
  // state is bigger than a block; below that the whole state is one block
  // and plain per-op sweeps are already cache-resident.
  const bool blocking = options_.cache_blocking &&
                        num_qubits_ > options_.block_qubits;
  std::size_t i = 0;
  while (i < ops_.size()) {
    const bool can_block =
        blocking && op_is_blockable(ops_[i], options_.block_qubits);
    std::size_t j = i + 1;
    while (j < ops_.size() &&
           (blocking && op_is_blockable(ops_[j], options_.block_qubits)) ==
               can_block)
      ++j;
    if (can_block && j - i >= 2) {
      groups_.push_back({i, j, true});
      stats_.blocked_ops += j - i;
      ++stats_.memory_passes;
    } else {
      groups_.push_back({i, j, false});
      stats_.memory_passes += j - i;
    }
    i = j;
  }
  stats_.exec_groups = groups_.size();

  g_program_compiles.fetch_add(1, std::memory_order_relaxed);
}

void SimProgram::apply_inplace(State& state, std::span<const double> theta,
                               std::size_t workers) const {
  QARCH_REQUIRE(state_qubits(state) == num_qubits_,
                "state qubit count mismatch");
  QARCH_REQUIRE(theta.size() >= num_params_,
                "parameter vector too short for program");
  if (workers == 0) workers = 1;
  const std::size_t threshold = options_.parallel_threshold_qubits;
  const bool use_simd = options_.simd;
  const bool parallel = workers > 1 && num_qubits_ >= threshold;

  // -- bind phase ------------------------------------------------------------
  // Every parameterized op rebinds its handful of scalars ONCE per call into
  // per-thread scratch (a shared program stays thread-safe and const, and
  // the hot loop — hundreds of energy(theta) calls per candidate — reuses
  // the buffers instead of reallocating). Binding must precede replay: a
  // blocked group revisits each op once per block.
  struct BindScratch {
    std::vector<std::array<cplx, 16>> coeffs;
    std::vector<std::vector<cplx>> luts;
    std::vector<const cplx*> cf;
    std::vector<const cplx*> lut;
  };
  static thread_local BindScratch scratch;
  scratch.coeffs.clear();
  scratch.cf.assign(ops_.size(), nullptr);
  scratch.lut.assign(ops_.size(), nullptr);
  std::size_t num_sym_tables = 0;
  for (const CompiledOp& op : ops_) {
    if (op.kind == CompiledOp::Kind::DiagTable) {
      if (!op.has_symbol) continue;
      if (scratch.luts.size() <= num_sym_tables) scratch.luts.emplace_back();
      std::vector<cplx>& bound = scratch.luts[num_sym_tables++];
      const double t = theta[op.symbol_index];
      bound.resize(op.class_const.size());
      for (std::size_t c = 0; c < bound.size(); ++c)
        bound[c] = std::polar(1.0, op.class_const[c] + op.class_scale[c] * t);
    } else if (op.parameterized) {
      scratch.coeffs.push_back(bind_op(op, theta));
    }
  }
  const std::vector<const cplx*>& cf = scratch.cf;
  const std::vector<const cplx*>& lut = scratch.lut;
  {
    std::size_t nc = 0, nl = 0;
    for (std::size_t oi = 0; oi < ops_.size(); ++oi) {
      const CompiledOp& op = ops_[oi];
      if (op.kind == CompiledOp::Kind::DiagTable)
        scratch.lut[oi] =
            op.has_symbol ? scratch.luts[nl++].data() : op.lut.data();
      else
        scratch.cf[oi] = op.parameterized ? scratch.coeffs[nc++].data()
                                          : op.coeffs.data();
    }
  }

  // -- replay phase ----------------------------------------------------------
  // Runs one op on one contiguous slice [base, base + len) of the state.
  const auto apply_slice = [&](std::size_t oi, cplx* z, std::size_t len,
                               std::size_t base) {
    const CompiledOp& op = ops_[oi];
    switch (op.kind) {
      case CompiledOp::Kind::Diag1:
        simd::diag1_slice(z, len, base, op.q0, cf[oi][0], cf[oi][1], use_simd);
        break;
      case CompiledOp::Kind::Diag2:
        simd::diag2_slice(z, len, base, op.q0, op.q1, cf[oi], use_simd);
        break;
      case CompiledOp::Kind::DiagTable:
        simd::table_slice(z, op.classes.data() + base, lut[oi], len, use_simd);
        break;
      case CompiledOp::Kind::Single:
        // Valid because base is aligned to the block size and q0 lies below
        // the block boundary, so local pair indices equal global ones.
        simd::single_pair_range(z, op.q0, cf[oi], 0, len / 2, use_simd);
        break;
      case CompiledOp::Kind::Two:
        simd::two_quad_range(z, op.q0, op.q1, cf[oi], 0, len / 4);
        break;
    }
  };

  for (const ExecGroup& grp : groups_) {
    if (grp.blocked) {
      // One memory pass for the whole group: each L2-resident block streams
      // through every op before the next block is touched. Blocks are
      // independent (all ops act within a block), so they parallelize.
      const std::size_t bs = std::size_t{1} << options_.block_qubits;
      const std::size_t num_blocks = state.size() / bs;
      const auto run_block = [&](std::size_t b) {
        const std::size_t base = b * bs;
        for (std::size_t oi = grp.begin; oi < grp.end; ++oi)
          apply_slice(oi, state.data() + base, bs, base);
      };
      if (parallel)
        parallel::parallel_for(0, num_blocks, run_block, workers, 1);
      else
        for (std::size_t b = 0; b < num_blocks; ++b) run_block(b);
      continue;
    }
    for (std::size_t oi = grp.begin; oi < grp.end; ++oi) {
      const CompiledOp& op = ops_[oi];
      switch (op.kind) {
        case CompiledOp::Kind::Diag1:
          kernel_diag1(state, op.q0, cf[oi][0], cf[oi][1], workers, threshold,
                       use_simd);
          break;
        case CompiledOp::Kind::Diag2:
          kernel_diag2(state, op.q0, op.q1, cf[oi], workers, threshold,
                       use_simd);
          break;
        case CompiledOp::Kind::DiagTable:
          if (parallel)
            parallel::parallel_for_blocks(
                0, state.size(),
                [&](std::size_t lo, std::size_t hi) {
                  simd::table_slice(state.data() + lo,
                                    op.classes.data() + lo, lut[oi], hi - lo,
                                    use_simd);
                },
                workers, 4096);
          else
            simd::table_slice(state.data(), op.classes.data(), lut[oi],
                              state.size(), use_simd);
          break;
        case CompiledOp::Kind::Single:
          kernel_single(state, op.q0, cf[oi], workers, threshold, use_simd);
          break;
        case CompiledOp::Kind::Two:
          kernel_two(state, op.q0, op.q1, cf[oi], workers, threshold);
          break;
      }
    }
  }
}

State SimProgram::run(std::span<const double> theta, State initial,
                      std::size_t workers) const {
  apply_inplace(initial, theta, workers);
  return initial;
}

State SimProgram::run_from_plus(std::span<const double> theta,
                                std::size_t workers) const {
  return run(theta, plus_state(num_qubits_), workers);
}

}  // namespace qarch::sim
