#include "sim/noise.hpp"

#include "common/error.hpp"

namespace qarch::sim {

namespace {

/// Applies a uniformly random Pauli error (X, Y, or Z) to one qubit.
void inject_pauli(State& state, std::size_t qubit, Rng& rng,
                  const StatevectorSimulator& sv) {
  static const circuit::GateKind kErrors[3] = {
      circuit::GateKind::X, circuit::GateKind::Y, circuit::GateKind::Z};
  const circuit::Gate err{kErrors[rng.uniform_int(3)], qubit, 0,
                          circuit::ParamExpr::none()};
  sv.apply(state, err, {});
}

}  // namespace

State noisy_trajectory(const circuit::Circuit& ansatz,
                       std::span<const double> theta,
                       const NoiseModel& noise, Rng& rng) {
  QARCH_REQUIRE(noise.p1 >= 0.0 && noise.p1 <= 1.0 && noise.p2 >= 0.0 &&
                    noise.p2 <= 1.0,
                "error probabilities must be in [0, 1]");
  const StatevectorSimulator sv;
  State state = plus_state(ansatz.num_qubits());
  for (const circuit::Gate& gate : ansatz.gates()) {
    sv.apply(state, gate, theta);
    if (gate.arity() == 1) {
      if (noise.p1 > 0.0 && rng.bernoulli(noise.p1))
        inject_pauli(state, gate.q0, rng, sv);
    } else {
      if (noise.p2 > 0.0 && rng.bernoulli(noise.p2))
        inject_pauli(state, gate.q0, rng, sv);
      if (noise.p2 > 0.0 && rng.bernoulli(noise.p2))
        inject_pauli(state, gate.q1, rng, sv);
    }
  }
  return state;
}

double noisy_cut_expectation(const circuit::Circuit& ansatz,
                             std::span<const double> theta,
                             const graph::Graph& g, const NoiseModel& noise,
                             std::size_t trajectories, Rng& rng) {
  QARCH_REQUIRE(trajectories >= 1, "need at least one trajectory");
  QARCH_REQUIRE(g.num_vertices() == ansatz.num_qubits(),
                "graph/ansatz size mismatch");
  const std::size_t runs = noise.is_noiseless() ? 1 : trajectories;
  double total = 0.0;
  for (std::size_t t = 0; t < runs; ++t) {
    const State state = noisy_trajectory(ansatz, theta, noise, rng);
    double energy = 0.0;
    for (const auto& e : g.edges())
      energy += e.weight / 2.0 * (1.0 - expectation_zz(state, e.u, e.v));
    total += energy;
  }
  return total / static_cast<double>(runs);
}

}  // namespace qarch::sim
