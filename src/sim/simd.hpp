// SIMD streaming passes for the statevector kernels.
//
// Every hot loop of the compiled simulation path — the Diag1/Diag2 phase
// streams, the DiagTable per-class lookup, the fused 2x2 Single kernel, and
// the batched <Z_u Z_v> sweep — reduces to a handful of contiguous
// complex-double passes. This header names those passes once; the
// implementation provides an AVX2/FMA variant (interleaved re/im lanes, two
// complex doubles per 256-bit register) and a portable scalar fallback with
// identical semantics.
//
// Dispatch: the AVX2 bodies are compiled with per-function target attributes
// (`target("avx2,fma")`), so the library builds WITHOUT -mavx2 and still
// ships the vector paths; at runtime `active()` checks, once, that (a) the
// build had the x86 paths enabled (QARCH_ENABLE_AVX2, on by default), (b)
// the CPU reports avx2+fma, and (c) neither the QARCH_SIMD=0 environment
// override nor set_runtime_enabled(false) turned them off. Every pass also
// takes a per-call `use_simd` flag so a compiled plan (PlanOptions::simd)
// can opt out for ablation without flipping global state.
//
// Slice passes take the slice's GLOBAL base index so the cache-blocked
// replay can run any op on any aligned sub-range of the state: selector
// bits are always computed against base + local offset.
#pragma once

#include <cstddef>
#include <cstdint>

#include "linalg/matrix.hpp"

namespace qarch::sim::simd {

using linalg::cplx;

// -- capability & dispatch ----------------------------------------------------

/// True when this build contains the AVX2 code paths at all.
bool compiled_with_avx2();

/// True when the executing CPU reports AVX2 and FMA.
bool cpu_has_avx2();

/// Process-wide override (default on; QARCH_SIMD=0 in the environment turns
/// it off at startup). Benches and the CI scalar leg use this to force the
/// fallback without rebuilding.
void set_runtime_enabled(bool enabled);
bool runtime_enabled();

/// The actual dispatch decision: compiled_with_avx2() && cpu_has_avx2() &&
/// runtime_enabled(). Cheap (one relaxed atomic load) — called per pass.
bool active();

// -- streaming passes ---------------------------------------------------------
//
// All passes mutate `z[0..n)` in place. `use_simd=false` forces the scalar
// body regardless of active(). Both variants perform the same per-amplitude
// operations in the same order (the AVX2 bodies use explicit mul+addsub, no
// FMA), so results agree bit-for-bit unless the COMPILER contracts the
// scalar bodies (global -mfma builds), and always to within an ulp or two;
// zz_accumulate additionally reassociates its partial sums (rounding-level
// differences). Toggling mid-run is safe.

/// z[i] *= w.
void scale_run(cplx* z, std::size_t n, cplx w, bool use_simd = true);

/// z[i] *= (i even ? w0 : w1) — the qubit-0 diagonal pattern.
void mul_pattern2(cplx* z, std::size_t n, cplx w0, cplx w1,
                  bool use_simd = true);

/// Single-qubit diagonal on a slice: z[i] *= ((base+i)>>q & 1 ? d1 : d0).
void diag1_slice(cplx* z, std::size_t n, std::size_t base, std::size_t q,
                 cplx d0, cplx d1, bool use_simd = true);

/// Two-qubit diagonal on a slice with entries d[((gi>>q0)&1)<<1 | (gi>>q1)&1]
/// for gi = base + i (d has 4 entries).
void diag2_slice(cplx* z, std::size_t n, std::size_t base, std::size_t q0,
                 std::size_t q1, const cplx* d, bool use_simd = true);

/// Phase-table lookup: z[i] *= lut[cls[i]] (cls already offset to the slice).
void table_slice(cplx* z, const std::uint16_t* cls, const cplx* lut,
                 std::size_t n, bool use_simd = true);

/// Fused 2x2 on two contiguous runs: (a[i], b[i]) <- M (a[i], b[i])^T with
/// row-major m[4]. The Single kernel's inner loop for target qubit q >= 1,
/// where the bit-q=0 and bit-q=1 amplitudes form runs of length 2^q.
void single_pairs(cplx* a, cplx* b, std::size_t n, const cplx* m,
                  bool use_simd = true);

/// Fused 2x2 over a PAIR-INDEX range [klo, khi): pair k expands to
/// i0 = ((k >> q) << (q+1)) | (k & (2^q - 1)), i1 = i0 | 2^q, exactly the
/// index walk of the legacy kernel. Works for q = 0 (interleaved pairs) and
/// arbitrary unaligned [klo, khi) splits, so both the serial full-state
/// kernel and any parallel chunking share one body.
void single_pair_range(cplx* z, std::size_t q, const cplx* m, std::size_t klo,
                       std::size_t khi, bool use_simd = true);

/// Dense 4x4 over a QUAD-INDEX range [klo, khi) (scalar only — the dense
/// two-qubit op never appears in QAOA plans; kept for completeness). Quad k
/// spreads across the two bit holes exactly like the legacy kernel.
void two_quad_range(cplx* z, std::size_t q0, std::size_t q1, const cplx* m,
                    std::size_t klo, std::size_t khi);

/// Batched <Z_u Z_v> partial sums over state[lo, hi): for each mask m_k,
/// acc[k] += sum_i parity(i & m_k) ? -|z_i|^2 : +|z_i|^2. `acc` must hold
/// num_masks entries and is accumulated into (not cleared).
void zz_accumulate(const cplx* state, std::size_t lo, std::size_t hi,
                   const std::size_t* masks, std::size_t num_masks,
                   double* acc, bool use_simd = true);

// -- contiguous-run passes (qtensor bucket kernels) ---------------------------
//
// The fused product+sum contraction kernel gathers factor values into
// contiguous scratch runs and chains them through these two passes; they
// follow the same contract as the passes above (mul+addsub multiplies, no
// FMA, remainder handled scalar by the dispatcher).

/// acc[i] *= x[i] — elementwise complex multiply of two contiguous runs.
void cplx_mul_runs(cplx* acc, const cplx* x, std::size_t n,
                   bool use_simd = true);

/// out[i] = a[i] + b[i] — elementwise complex add of two contiguous runs.
void cplx_add_runs(cplx* out, const cplx* a, const cplx* b, std::size_t n,
                   bool use_simd = true);

}  // namespace qarch::sim::simd
