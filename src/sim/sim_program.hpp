// Compiled statevector simulation plans.
//
// A SimProgram pre-compiles a circuit::Circuit ONCE into a short sequence of
// specialized ops, so that the thousands of per-candidate energy evaluations
// of the architecture search pay circuit analysis once instead of per call:
//
//   * Diagonal gates (RZ/P/Z/S/T/CZ/RZZ — the QAOA cost layer is pure RZZ)
//     compile to streaming phase kernels: ONE complex multiply per amplitude,
//     no pair/quad index shuffling and no 2x2/4x4 matrix allocation. This is
//     the statevector analogue of QTensor's diagonal-gate rank reduction
//     (Lykov & Alexeev 2021), which the tensor backend already exploits.
//   * Runs of adjacent single-qubit gates on the same wire fuse into one
//     cached 2x2 matrix (the numeric counterpart of circuit::optimize's
//     symbolic rotation merging, which runs first as a pre-pass).
//   * Matrices of non-parameterized ops are computed at compile time;
//     parameterized ops cache their source gates and rebind a handful of
//     scalars per theta — never re-deriving the gate list.
//
// Every optimizer step, landscape scan, and search-engine call path inherits
// the compiled path through qaoa::EnergyEvaluator (EngineKind::Statevector).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/statevector.hpp"

namespace qarch::sim {

/// Compilation toggles (all on by default; the abl_* benches switch them off
/// to measure each specialization in isolation). This is the statevector
/// half of the compiled-plan toggle surface reached through
/// qaoa::EnergyOptions::sv_plan; the tensor-network analogue is
/// qtensor::QTensorOptions (compile_programs / planner / slicing).
struct PlanOptions {
  /// Compile diagonal gates (RZ/P/Z/S/T/CZ/RZZ) to streaming phase kernels:
  /// one complex multiply per amplitude, no pair/quad index shuffling.
  bool diagonal_kernels = true;
  /// Merge each run of adjacent single-qubit gates on one wire into a
  /// single cached 2x2 matrix.
  bool fuse_single_qubit = true;
  /// Run circuit::optimize before compiling. search::Evaluator turns this
  /// off when it already pre-simplified the candidate
  /// (EvaluatorOptions::effective_energy).
  bool presimplify = true;
  /// Fold each run of consecutive diagonal ops sharing at most one symbolic
  /// parameter (e.g. an entire QAOA cost layer) into ONE streaming pass: a
  /// per-amplitude phase-class table baked at compile time plus a per-theta
  /// phase lookup rebuilt from a handful of scalars. Requires
  /// diagonal_kernels.
  bool phase_tables = true;
  std::size_t phase_table_max_qubits = 22;  ///< table memory guard
  std::size_t parallel_threshold_qubits = 14;  ///< serial below this size
  /// Use the AVX2/FMA streaming bodies when the build and CPU support them
  /// (sim::simd); false forces the scalar fallback everywhere in this plan.
  bool simd = true;
  /// Cache-blocked replay: runs of consecutive ops that act within (or
  /// diagonally across) a 2^block_qubits-amplitude block are replayed block
  /// by block, streaming each L2-resident block through the WHOLE run per
  /// memory pass instead of sweeping the full state once per op.
  bool cache_blocking = true;
  std::size_t block_qubits = 15;  ///< 2^15 amplitudes = 512 KiB per block

  /// The fully de-specialized configuration: per-gate dense kernels, no
  /// fusion, scalar bodies, no blocking. The compiled-plan machinery with
  /// none of its optimizations — equivalence tests replay it against the
  /// specialized program. (The abl_* benches' "generic" variant goes
  /// further and bypasses SimProgram entirely via sv_compile_plan=false.)
  static PlanOptions generic() {
    PlanOptions o;
    o.diagonal_kernels = false;
    o.fuse_single_qubit = false;
    o.presimplify = false;
    o.phase_tables = false;
    o.simd = false;
    o.cache_blocking = false;
    return o;
  }
};

/// One compiled operation. Non-parameterized ops carry their final
/// coefficients; parameterized ops additionally keep the source gates they
/// were fused from and recompute the coefficients per theta.
struct CompiledOp {
  enum class Kind {
    Diag1,      ///< streaming diag(d0, d1) on q0       (coeffs[0..1])
    Diag2,      ///< streaming 2q diagonal on (q0, q1)  (coeffs[0..3])
    DiagTable,  ///< phase-class table for a whole diagonal run
    Single,     ///< dense 2x2 on q0, row-major         (coeffs[0..3])
    Two,        ///< dense 4x4 on (q0, q1), row-major, q0 = high basis bit
  };

  Kind kind = Kind::Single;
  std::size_t q0 = 0;
  std::size_t q1 = 0;
  bool parameterized = false;
  std::array<linalg::cplx, 16> coeffs{};
  std::vector<circuit::Gate> sources;  ///< gates fused into this op

  // DiagTable payload. The op applies state[i] *= exp(i * (class_const[c] +
  // class_scale[c] * theta[symbol_index])) with c = classes[i]; the class
  // table depends only on circuit structure, so a new theta costs one
  // exp() per CLASS instead of per amplitude.
  std::vector<std::uint16_t> classes;  ///< per-amplitude phase-class id
  std::vector<double> class_const;     ///< per-class constant angle
  std::vector<double> class_scale;     ///< per-class theta coefficient
  std::vector<linalg::cplx> lut;       ///< baked phases when !has_symbol
  bool has_symbol = false;
  std::size_t symbol_index = 0;
};

/// Per-program compilation statistics (reported by the benches).
struct ProgramStats {
  std::size_t source_gates = 0;  ///< gates after the presimplify pass
  std::size_t ops = 0;
  std::size_t diag1_ops = 0;
  std::size_t diag2_ops = 0;
  std::size_t diag_table_ops = 0;
  std::size_t single_ops = 0;
  std::size_t two_ops = 0;
  std::size_t fused_gates = 0;   ///< source gates absorbed into multi-gate ops
  std::size_t exec_groups = 0;   ///< replay groups (see cache_blocking)
  std::size_t blocked_ops = 0;   ///< ops replayed block-by-block
  std::size_t memory_passes = 0; ///< full-state sweeps per replay (groups
                                 ///< count once; the blocking win metric)
};

/// Number of SimProgram compilations since the last reset. Thread-safe. The
/// plan-reuse benches and tests use this to prove that a whole training run
/// (multistart restarts included) costs exactly one compilation.
std::uint64_t program_compile_count();
void reset_program_compile_count();

/// A circuit compiled against fixed structure, replayable for any theta.
/// Thread-safe after construction: run() binds parameterized coefficients
/// into locals, so one program may be shared across search workers.
///
/// Thread-safety contract: SimProgram owns NO qarch::Mutex — all members
/// are immutable after the constructor returns, so concurrent run() calls
/// need no synchronization (the compile counter above is a lone
/// std::atomic, and per-replay scratch is thread_local). If a future change
/// adds mutable shared state, it must take an annotated qarch::Mutex with a
/// rank from common/lock_order.hpp, not a raw std::mutex.
class SimProgram {
 public:
  explicit SimProgram(const circuit::Circuit& circuit, PlanOptions options = {});

  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }
  [[nodiscard]] std::size_t num_params() const { return num_params_; }
  [[nodiscard]] const std::vector<CompiledOp>& ops() const { return ops_; }
  [[nodiscard]] const ProgramStats& stats() const { return stats_; }
  [[nodiscard]] const PlanOptions& options() const { return options_; }

  /// Replays the program on `state` in place with up to `workers` threads.
  void apply_inplace(State& state, std::span<const double> theta,
                     std::size_t workers = 1) const;

  /// Runs on `initial` and returns the final state.
  [[nodiscard]] State run(std::span<const double> theta, State initial,
                          std::size_t workers = 1) const;

  /// Runs on |+>^n (the QAOA convention).
  [[nodiscard]] State run_from_plus(std::span<const double> theta,
                                    std::size_t workers = 1) const;

 private:
  /// One replay unit: ops [begin, end). Blocked groups stream every
  /// 2^block_qubits-amplitude block of the state through all their ops in
  /// one memory pass; unblocked groups sweep the full state once per op.
  struct ExecGroup {
    std::size_t begin = 0;
    std::size_t end = 0;
    bool blocked = false;
  };

  std::size_t num_qubits_ = 0;
  std::size_t num_params_ = 0;
  PlanOptions options_;
  std::vector<CompiledOp> ops_;
  std::vector<ExecGroup> groups_;
  ProgramStats stats_;
};

}  // namespace qarch::sim
