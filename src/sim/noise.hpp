// NISQ noise simulation via Monte-Carlo quantum trajectories.
//
// The paper motivates architecture search with the NISQ setting; this module
// lets discovered circuits be re-scored under hardware-style noise. Each
// trajectory runs the circuit on the statevector simulator and, after every
// gate, stochastically applies a Pauli error drawn from the channel attached
// to that gate class. Averaging observables over trajectories converges to
// the density-matrix result with O(1/sqrt(T)) error — the standard
// trajectory method, which keeps memory at 2^n instead of 4^n.
#pragma once

#include <cstddef>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "sim/statevector.hpp"

namespace qarch::sim {

/// Depolarizing-style error rates per gate class.
struct NoiseModel {
  double p1 = 0.0;  ///< error probability after each single-qubit gate
  double p2 = 0.0;  ///< error probability after each two-qubit gate
                    ///< (applied independently to both qubits)

  /// True when both rates are zero (trajectories collapse to one run).
  [[nodiscard]] bool is_noiseless() const { return p1 == 0.0 && p2 == 0.0; }
};

/// Trajectory-averaged expectation of the max-cut Hamiltonian
/// <C> = sum_e w/2 (1 - <Z_u Z_v>) after running `ansatz` from |+>^n.
double noisy_cut_expectation(const circuit::Circuit& ansatz,
                             std::span<const double> theta,
                             const graph::Graph& g, const NoiseModel& noise,
                             std::size_t trajectories, Rng& rng);

/// One noisy trajectory: runs the circuit, injecting uniform X/Y/Z errors
/// after gates per the model. Exposed for tests.
State noisy_trajectory(const circuit::Circuit& ansatz,
                       std::span<const double> theta,
                       const NoiseModel& noise, Rng& rng);

}  // namespace qarch::sim
