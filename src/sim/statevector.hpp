// Reference full-statevector simulator.
//
// The QTensor tensor-network backend is the paper's simulator; this
// statevector engine is the ground-truth oracle we verify it against, and is
// also the faster path for the paper's 10-qubit workloads. Kernels can run
// multithreaded (the "inner" level of the two-level parallelization scheme).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace qarch::sim {

using linalg::cplx;

/// A normalized pure state on n qubits, little-endian (bit q of the
/// amplitude index is qubit q).
using State = std::vector<cplx>;

/// |0...0> on n qubits.
State zero_state(std::size_t num_qubits);

/// |+>^{⊗n} — the QAOA initial state |s>.
State plus_state(std::size_t num_qubits);

/// Full-state simulator with an optional thread budget for the kernels.
class StatevectorSimulator {
 public:
  /// `workers` threads are used for gate kernels on states with at least
  /// `parallel_threshold_qubits` qubits (smaller states run serially —
  /// thread fork/join would dominate). `use_simd=false` forces the scalar
  /// kernel bodies (ablation baselines).
  explicit StatevectorSimulator(std::size_t workers = 1,
                                std::size_t parallel_threshold_qubits = 14,
                                bool use_simd = true);

  [[nodiscard]] std::size_t workers() const { return workers_; }

  /// Applies one gate in place. theta resolves symbolic gate parameters.
  void apply(State& state, const circuit::Gate& gate,
             std::span<const double> theta) const;

  /// Runs the whole circuit on `initial` and returns the final state.
  [[nodiscard]] State run(const circuit::Circuit& circuit,
                          std::span<const double> theta,
                          State initial) const;

  /// Runs the circuit on |+>^n (the QAOA convention).
  [[nodiscard]] State run_from_plus(const circuit::Circuit& circuit,
                                    std::span<const double> theta) const;

 private:
  std::size_t workers_;
  std::size_t parallel_threshold_qubits_;
  bool use_simd_;
};

// -- low-level gate kernels --------------------------------------------------
//
// Free functions shared by StatevectorSimulator (per-gate path) and
// SimProgram (compiled-plan path). States with fewer than
// `parallel_threshold_qubits` qubits always run serially — fork/join would
// dominate the sweep. Inner loops stream through sim::simd (AVX2/FMA when
// available, scalar otherwise); `use_simd = false` forces the scalar bodies
// for ablation and fallback testing.

/// Applies a dense 2x2 matrix (row-major, 4 entries) to qubit q.
void kernel_single(State& state, std::size_t q, const cplx* m,
                   std::size_t workers, std::size_t parallel_threshold_qubits,
                   bool use_simd = true);

/// Applies a dense 4x4 matrix (row-major, 16 entries; bit q0 is the HIGH bit
/// of the 4x4 basis, bit q1 the low bit) to qubits (q0, q1).
void kernel_two(State& state, std::size_t q0, std::size_t q1, const cplx* m,
                std::size_t workers, std::size_t parallel_threshold_qubits);

/// Streams diag(d0, d1) on qubit q: one complex multiply per amplitude, no
/// index shuffling and no pair gathering.
void kernel_diag1(State& state, std::size_t q, cplx d0, cplx d1,
                  std::size_t workers, std::size_t parallel_threshold_qubits,
                  bool use_simd = true);

/// Streams a two-qubit diagonal gate with entries d[(bit_q0 << 1) | bit_q1]
/// (d has 4 entries): one complex multiply per amplitude.
void kernel_diag2(State& state, std::size_t q0, std::size_t q1, const cplx* d,
                  std::size_t workers, std::size_t parallel_threshold_qubits,
                  bool use_simd = true);

// -- expectation values ------------------------------------------------------

/// <state| Z_u Z_v |state>.
double expectation_zz(const State& state, std::size_t u, std::size_t v);

/// <state| Z_q |state>.
double expectation_z(const State& state, std::size_t q);

/// Probability of measuring basis state `basis_index`.
double probability(const State& state, std::size_t basis_index);

/// Number of qubits of a state (log2 of its size); validates power of two.
std::size_t state_qubits(const State& state);

// -- instrumentation ---------------------------------------------------------

/// Number of full-state sweeps the expectation kernels have performed since
/// the last reset (one per expectation_zz / expectation_z call, one per
/// batched_expectation_zz call). Thread-safe; used by the bench harnesses to
/// verify the one-pass-total claim of the batched sweep.
std::uint64_t expectation_sweep_count();
void reset_expectation_sweep_count();

namespace detail {
/// Records one full-state expectation sweep (internal instrumentation hook).
void note_expectation_sweep();
}  // namespace detail

}  // namespace qarch::sim
