// Reference full-statevector simulator.
//
// The QTensor tensor-network backend is the paper's simulator; this
// statevector engine is the ground-truth oracle we verify it against, and is
// also the faster path for the paper's 10-qubit workloads. Kernels can run
// multithreaded (the "inner" level of the two-level parallelization scheme).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace qarch::sim {

using linalg::cplx;

/// A normalized pure state on n qubits, little-endian (bit q of the
/// amplitude index is qubit q).
using State = std::vector<cplx>;

/// |0...0> on n qubits.
State zero_state(std::size_t num_qubits);

/// |+>^{⊗n} — the QAOA initial state |s>.
State plus_state(std::size_t num_qubits);

/// Full-state simulator with an optional thread budget for the kernels.
class StatevectorSimulator {
 public:
  /// `workers` threads are used for gate kernels on states with at least
  /// `parallel_threshold_qubits` qubits (smaller states run serially —
  /// thread fork/join would dominate).
  explicit StatevectorSimulator(std::size_t workers = 1,
                                std::size_t parallel_threshold_qubits = 14);

  [[nodiscard]] std::size_t workers() const { return workers_; }

  /// Applies one gate in place. theta resolves symbolic gate parameters.
  void apply(State& state, const circuit::Gate& gate,
             std::span<const double> theta) const;

  /// Runs the whole circuit on `initial` and returns the final state.
  [[nodiscard]] State run(const circuit::Circuit& circuit,
                          std::span<const double> theta,
                          State initial) const;

  /// Runs the circuit on |+>^n (the QAOA convention).
  [[nodiscard]] State run_from_plus(const circuit::Circuit& circuit,
                                    std::span<const double> theta) const;

 private:
  void apply_single(State& state, std::size_t q,
                    const linalg::Matrix& m) const;
  void apply_two(State& state, std::size_t q0, std::size_t q1,
                 const linalg::Matrix& m) const;

  std::size_t workers_;
  std::size_t parallel_threshold_qubits_;
};

/// <state| Z_u Z_v |state>.
double expectation_zz(const State& state, std::size_t u, std::size_t v);

/// <state| Z_q |state>.
double expectation_z(const State& state, std::size_t q);

/// Probability of measuring basis state `basis_index`.
double probability(const State& state, std::size_t basis_index);

/// Number of qubits of a state (log2 of its size); validates power of two.
std::size_t state_qubits(const State& state);

}  // namespace qarch::sim
