#include "sim/simd.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <vector>

// The AVX2 bodies are gated three ways:
//   * compile time — x86-64 with GCC/Clang (per-function target attributes
//     let us emit AVX2 code without -mavx2 on the whole build), unless the
//     QARCH_DISABLE_AVX2 definition (CMake -DQARCH_ENABLE_AVX2=OFF) forces
//     the portable scalar build;
//   * run time (CPU) — __builtin_cpu_supports("avx2"/"fma"), checked once;
//   * run time (policy) — QARCH_SIMD=0 in the environment or
//     set_runtime_enabled(false).
#if !defined(QARCH_DISABLE_AVX2) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define QARCH_SIMD_X86 1
#include <immintrin.h>
#else
#define QARCH_SIMD_X86 0
#endif

namespace qarch::sim::simd {

namespace {

bool env_allows_simd() {
  const char* v = std::getenv("QARCH_SIMD");
  if (v == nullptr) return true;
  return !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool>& runtime_flag() {
  static std::atomic<bool> flag{env_allows_simd()};
  return flag;
}

}  // namespace

bool compiled_with_avx2() { return QARCH_SIMD_X86 != 0; }

bool cpu_has_avx2() {
#if QARCH_SIMD_X86
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

void set_runtime_enabled(bool enabled) {
  runtime_flag().store(enabled, std::memory_order_relaxed);
}

bool runtime_enabled() {
  return runtime_flag().load(std::memory_order_relaxed);
}

bool active() {
  return compiled_with_avx2() && cpu_has_avx2() && runtime_enabled();
}

// -- scalar bodies ------------------------------------------------------------
//
// The scalar and AVX2 variants of the multiplicative passes perform the SAME
// floating-point operations in the same order per amplitude
// ((zr*wr - zi*wi, zi*wr + zr*wi), each product rounded before the add/sub —
// the AVX2 bodies never use FMA). This file is built with -ffp-contract=off
// so the default build agrees bit-for-bit across the toggle; under a global
// -mfma build GCC's complex-multiply vectorization can still contract the
// scalar bodies (addsub+mul -> vfmaddsub ignores fp-contract), leaving
// last-ulp differences. zz_accumulate additionally keeps four running lanes
// per mask, so its partial sums associate differently (equal within
// rounding).

namespace {

void scale_run_scalar(cplx* z, std::size_t n, cplx w) {
  for (std::size_t i = 0; i < n; ++i) z[i] *= w;
}

void mul_pattern2_scalar(cplx* z, std::size_t n, cplx w0, cplx w1) {
  for (std::size_t i = 0; i < n; ++i) z[i] *= (i & 1) ? w1 : w0;
}

void table_slice_scalar(cplx* z, const std::uint16_t* cls, const cplx* lut,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] *= lut[cls[i]];
}

void single_pairs_scalar(cplx* a, cplx* b, std::size_t n, const cplx* m) {
  const cplx m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
  for (std::size_t i = 0; i < n; ++i) {
    const cplx va = a[i], vb = b[i];
    a[i] = m00 * va + m01 * vb;
    b[i] = m10 * va + m11 * vb;
  }
}

void cplx_mul_runs_scalar(cplx* acc, const cplx* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] *= x[i];
}

void cplx_add_runs_scalar(cplx* out, const cplx* a, const cplx* b,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void zz_accumulate_scalar(const cplx* state, std::size_t lo, std::size_t hi,
                          const std::size_t* masks, std::size_t num_masks,
                          double* acc) {
  for (std::size_t i = lo; i < hi; ++i) {
    const double p = std::norm(state[i]);
    // Branchless sign select: the parity of i & mask is data-dependent per
    // term, so a conditional would mispredict half the time.
    const double pm[2] = {p, -p};
    for (std::size_t k = 0; k < num_masks; ++k)
      acc[k] += pm[std::popcount(i & masks[k]) & 1];
  }
}

}  // namespace

// -- AVX2 bodies --------------------------------------------------------------

#if QARCH_SIMD_X86

#define QARCH_AVX2_FN __attribute__((target("avx2,fma")))

namespace {

/// One 256-bit register holds two interleaved complex doubles
/// [z0.re, z0.im, z1.re, z1.im]. Multiply both by the broadcast constant
/// (wr, wi): mul + addsub, matching the scalar rounding exactly.
QARCH_AVX2_FN inline __m256d cmul_bcast(__m256d z, __m256d wr, __m256d wi) {
  const __m256d t0 = _mm256_mul_pd(z, wr);
  const __m256d zs = _mm256_permute_pd(z, 0x5);  // swap re/im per lane pair
  const __m256d t1 = _mm256_mul_pd(zs, wi);
  return _mm256_addsub_pd(t0, t1);  // (zr*wr - zi*wi, zi*wr + zr*wi)
}

/// Lane-wise complex multiply: w carries a DISTINCT multiplier per complex
/// lane, [w0.re, w0.im, w1.re, w1.im].
QARCH_AVX2_FN inline __m256d cmul_lane(__m256d z, __m256d w) {
  const __m256d wr = _mm256_movedup_pd(w);       // [w0r, w0r, w1r, w1r]
  const __m256d wi = _mm256_permute_pd(w, 0xF);  // [w0i, w0i, w1i, w1i]
  return cmul_bcast(z, wr, wi);
}

// NOTE every *_avx2 body below only touches COMPLETE vector groups (the
// dispatcher trims the byte count first and runs the remainder through the
// scalar helpers). A scalar loop inside these functions would be compiled
// under target("avx2,fma") and could FMA-contract, silently breaking the
// bit-identity contract with the scalar fallback.

/// n must be a multiple of 2.
QARCH_AVX2_FN void scale_run_avx2(cplx* z, std::size_t n, cplx w) {
  double* d = reinterpret_cast<double*>(z);
  const __m256d wr = _mm256_set1_pd(w.real());
  const __m256d wi = _mm256_set1_pd(w.imag());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(d + 2 * i);
    const __m256d b = _mm256_loadu_pd(d + 2 * i + 4);
    _mm256_storeu_pd(d + 2 * i, cmul_bcast(a, wr, wi));
    _mm256_storeu_pd(d + 2 * i + 4, cmul_bcast(b, wr, wi));
  }
  for (; i < n; i += 2)
    _mm256_storeu_pd(d + 2 * i,
                     cmul_bcast(_mm256_loadu_pd(d + 2 * i), wr, wi));
}

/// n must be a multiple of 2.
QARCH_AVX2_FN void mul_pattern2_avx2(cplx* z, std::size_t n, cplx w0,
                                     cplx w1) {
  double* d = reinterpret_cast<double*>(z);
  // One register covers one (w0, w1) period.
  const __m256d w = _mm256_setr_pd(w0.real(), w0.imag(), w1.real(), w1.imag());
  for (std::size_t i = 0; i < n; i += 2)
    _mm256_storeu_pd(d + 2 * i, cmul_lane(_mm256_loadu_pd(d + 2 * i), w));
}

/// n must be a multiple of 4.
QARCH_AVX2_FN void table_slice_avx2(cplx* z, const std::uint16_t* cls,
                                    const cplx* lut, std::size_t n) {
  double* d = reinterpret_cast<double*>(z);
  const double* lp = reinterpret_cast<const double*>(lut);
  // 16-byte loads from the lut + a 128-lane merge beat AVX2 gathers here:
  // class ids repeat heavily, so the lut lines stay in L1.
  for (std::size_t i = 0; i < n; i += 4) {
    const __m128d l0 = _mm_loadu_pd(lp + 2 * cls[i]);
    const __m128d l1 = _mm_loadu_pd(lp + 2 * cls[i + 1]);
    const __m128d l2 = _mm_loadu_pd(lp + 2 * cls[i + 2]);
    const __m128d l3 = _mm_loadu_pd(lp + 2 * cls[i + 3]);
    const __m256d w01 = _mm256_set_m128d(l1, l0);
    const __m256d w23 = _mm256_set_m128d(l3, l2);
    const __m256d z01 = _mm256_loadu_pd(d + 2 * i);
    const __m256d z23 = _mm256_loadu_pd(d + 2 * i + 4);
    _mm256_storeu_pd(d + 2 * i, cmul_lane(z01, w01));
    _mm256_storeu_pd(d + 2 * i + 4, cmul_lane(z23, w23));
  }
}

/// n must be a multiple of 2.
QARCH_AVX2_FN void single_pairs_avx2(cplx* a, cplx* b, std::size_t n,
                                     const cplx* m) {
  double* da = reinterpret_cast<double*>(a);
  double* db = reinterpret_cast<double*>(b);
  const __m256d m00r = _mm256_set1_pd(m[0].real()),
                m00i = _mm256_set1_pd(m[0].imag());
  const __m256d m01r = _mm256_set1_pd(m[1].real()),
                m01i = _mm256_set1_pd(m[1].imag());
  const __m256d m10r = _mm256_set1_pd(m[2].real()),
                m10i = _mm256_set1_pd(m[2].imag());
  const __m256d m11r = _mm256_set1_pd(m[3].real()),
                m11i = _mm256_set1_pd(m[3].imag());
  for (std::size_t i = 0; i < n; i += 2) {
    const __m256d za = _mm256_loadu_pd(da + 2 * i);
    const __m256d zb = _mm256_loadu_pd(db + 2 * i);
    const __m256d na =
        _mm256_add_pd(cmul_bcast(za, m00r, m00i), cmul_bcast(zb, m01r, m01i));
    const __m256d nb =
        _mm256_add_pd(cmul_bcast(za, m10r, m10i), cmul_bcast(zb, m11r, m11i));
    _mm256_storeu_pd(da + 2 * i, na);
    _mm256_storeu_pd(db + 2 * i, nb);
  }
}

/// q = 0 pair walk: amplitudes interleave as a0 b0 a1 b1 ...; two pairs load
/// as two registers that deinterleave with 128-bit lane permutes.
/// khi - klo must be a multiple of 2.
QARCH_AVX2_FN void single_q0_avx2(cplx* z, const cplx* m, std::size_t klo,
                                  std::size_t khi) {
  double* d = reinterpret_cast<double*>(z);
  const __m256d m00r = _mm256_set1_pd(m[0].real()),
                m00i = _mm256_set1_pd(m[0].imag());
  const __m256d m01r = _mm256_set1_pd(m[1].real()),
                m01i = _mm256_set1_pd(m[1].imag());
  const __m256d m10r = _mm256_set1_pd(m[2].real()),
                m10i = _mm256_set1_pd(m[2].imag());
  const __m256d m11r = _mm256_set1_pd(m[3].real()),
                m11i = _mm256_set1_pd(m[3].imag());
  for (std::size_t k = klo; k < khi; k += 2) {
    const __m256d v0 = _mm256_loadu_pd(d + 4 * k);      // [a0, b0]
    const __m256d v1 = _mm256_loadu_pd(d + 4 * k + 4);  // [a1, b1]
    const __m256d za = _mm256_permute2f128_pd(v0, v1, 0x20);  // [a0, a1]
    const __m256d zb = _mm256_permute2f128_pd(v0, v1, 0x31);  // [b0, b1]
    const __m256d na =
        _mm256_add_pd(cmul_bcast(za, m00r, m00i), cmul_bcast(zb, m01r, m01i));
    const __m256d nb =
        _mm256_add_pd(cmul_bcast(za, m10r, m10i), cmul_bcast(zb, m11r, m11i));
    _mm256_storeu_pd(d + 4 * k, _mm256_permute2f128_pd(na, nb, 0x20));
    _mm256_storeu_pd(d + 4 * k + 4, _mm256_permute2f128_pd(na, nb, 0x31));
  }
}

/// lo and hi must both be multiples of 4 (the dispatcher trims and runs the
/// unaligned head/tail through the scalar body): the per-group parity of
/// i & mask then splits into (group parity) xor (lane parity), with the lane
/// part baked into per-mask sign patterns.
QARCH_AVX2_FN void zz_accumulate_avx2(const cplx* state, std::size_t lo,
                                      std::size_t hi,
                                      const std::size_t* masks,
                                      std::size_t num_masks, double* acc) {
  const double* d = reinterpret_cast<const double*>(state);
  // hadd of the two squared registers yields probabilities in lane order
  // [p0, p2, p1, p3]; the patterns below use the same order. Patterns and
  // running lanes live in plain double storage (a std::vector<__m256d>
  // would not be guaranteed 32-byte aligned) — all L1-resident.
  std::vector<double> pattern(8 * num_masks);  // [mask][group parity][lane]
  std::vector<double> vacc(4 * num_masks, 0.0);
  for (std::size_t k = 0; k < num_masks; ++k) {
    const std::size_t low = masks[k] & 3;
    double s[4];
    for (std::size_t j = 0; j < 4; ++j)
      s[j] = (std::popcount(j & low) & 1) ? -1.0 : 1.0;
    const double lanes[4] = {s[0], s[2], s[1], s[3]};
    for (std::size_t l = 0; l < 4; ++l) {
      pattern[8 * k + l] = lanes[l];
      pattern[8 * k + 4 + l] = -lanes[l];
    }
  }
  for (std::size_t i = lo; i < hi; i += 4) {
    const __m256d z0 = _mm256_loadu_pd(d + 2 * i);
    const __m256d z1 = _mm256_loadu_pd(d + 2 * i + 4);
    const __m256d p =
        _mm256_hadd_pd(_mm256_mul_pd(z0, z0), _mm256_mul_pd(z1, z1));
    for (std::size_t k = 0; k < num_masks; ++k) {
      const std::size_t hi_par = std::popcount(i & masks[k]) & 1;
      const __m256d pat = _mm256_loadu_pd(&pattern[8 * k + 4 * hi_par]);
      const __m256d va = _mm256_loadu_pd(&vacc[4 * k]);
      _mm256_storeu_pd(&vacc[4 * k], _mm256_fmadd_pd(p, pat, va));
    }
  }
  for (std::size_t k = 0; k < num_masks; ++k)
    acc[k] +=
        vacc[4 * k] + vacc[4 * k + 1] + vacc[4 * k + 2] + vacc[4 * k + 3];
}

/// n must be a multiple of 2.
QARCH_AVX2_FN void cplx_mul_runs_avx2(cplx* acc, const cplx* x,
                                      std::size_t n) {
  double* da = reinterpret_cast<double*>(acc);
  const double* dx = reinterpret_cast<const double*>(x);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a0 = _mm256_loadu_pd(da + 2 * i);
    const __m256d a1 = _mm256_loadu_pd(da + 2 * i + 4);
    const __m256d x0 = _mm256_loadu_pd(dx + 2 * i);
    const __m256d x1 = _mm256_loadu_pd(dx + 2 * i + 4);
    _mm256_storeu_pd(da + 2 * i, cmul_lane(a0, x0));
    _mm256_storeu_pd(da + 2 * i + 4, cmul_lane(a1, x1));
  }
  for (; i < n; i += 2)
    _mm256_storeu_pd(da + 2 * i, cmul_lane(_mm256_loadu_pd(da + 2 * i),
                                           _mm256_loadu_pd(dx + 2 * i)));
}

/// n must be a multiple of 2.
QARCH_AVX2_FN void cplx_add_runs_avx2(cplx* out, const cplx* a, const cplx* b,
                                      std::size_t n) {
  double* dout = reinterpret_cast<double*>(out);
  const double* da = reinterpret_cast<const double*>(a);
  const double* db = reinterpret_cast<const double*>(b);
  for (std::size_t i = 0; i < n; i += 2)
    _mm256_storeu_pd(dout + 2 * i, _mm256_add_pd(_mm256_loadu_pd(da + 2 * i),
                                                 _mm256_loadu_pd(db + 2 * i)));
}

}  // namespace

#endif  // QARCH_SIMD_X86

// -- dispatched entry points --------------------------------------------------

void scale_run(cplx* z, std::size_t n, cplx w, bool use_simd) {
#if QARCH_SIMD_X86
  if (use_simd && active()) {
    const std::size_t vec = n & ~std::size_t{1};
    scale_run_avx2(z, vec, w);
    z += vec;
    n -= vec;
  }
#endif
  (void)use_simd;
  scale_run_scalar(z, n, w);
}

void mul_pattern2(cplx* z, std::size_t n, cplx w0, cplx w1, bool use_simd) {
#if QARCH_SIMD_X86
  if (use_simd && active()) {
    const std::size_t vec = n & ~std::size_t{1};
    mul_pattern2_avx2(z, vec, w0, w1);
    z += vec;
    n -= vec;  // at most one trailing element — an even index, so w0 first
  }
#endif
  (void)use_simd;
  mul_pattern2_scalar(z, n, w0, w1);
}

void diag1_slice(cplx* z, std::size_t n, std::size_t base, std::size_t q,
                 cplx d0, cplx d1, bool use_simd) {
  if (q == 0) {
    // The selector alternates every amplitude; fold the slice's parity into
    // the pattern's leading element.
    const bool odd = (base & 1) != 0;
    mul_pattern2(z, n, odd ? d1 : d0, odd ? d0 : d1, use_simd);
    return;
  }
  // Bit q is constant across each aligned 2^q run; stream run by run.
  const std::size_t stride = std::size_t{1} << q;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t gi = base + i;
    const std::size_t run_end = (gi | (stride - 1)) + 1;
    const std::size_t len = std::min(n - i, run_end - gi);
    scale_run(z + i, len, ((gi >> q) & 1) ? d1 : d0, use_simd);
    i += len;
  }
}

void diag2_slice(cplx* z, std::size_t n, std::size_t base, std::size_t q0,
                 std::size_t q1, const cplx* d, bool use_simd) {
  const std::size_t qa = std::min(q0, q1);
  const auto sel_of = [&](std::size_t gi) {
    return (((gi >> q0) & 1) << 1) | ((gi >> q1) & 1);
  };
  if (qa == 0) {
    // One selector bit flips every amplitude; the other is constant across
    // each aligned 2^qb run, so each run is a strict 2-periodic pattern.
    const std::size_t qb = std::max(q0, q1);
    const std::size_t stride = std::size_t{1} << qb;
    std::size_t i = 0;
    while (i < n) {
      const std::size_t gi = base + i;
      const std::size_t run_end = (gi | (stride - 1)) + 1;
      const std::size_t len = std::min(n - i, run_end - gi);
      mul_pattern2(z + i, len, d[sel_of(gi)], d[sel_of(gi + 1)], use_simd);
      i += len;
    }
    return;
  }
  // Both bits constant across each aligned 2^qa run.
  const std::size_t stride = std::size_t{1} << qa;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t gi = base + i;
    const std::size_t run_end = (gi | (stride - 1)) + 1;
    const std::size_t len = std::min(n - i, run_end - gi);
    scale_run(z + i, len, d[sel_of(gi)], use_simd);
    i += len;
  }
}

void table_slice(cplx* z, const std::uint16_t* cls, const cplx* lut,
                 std::size_t n, bool use_simd) {
#if QARCH_SIMD_X86
  if (use_simd && active()) {
    const std::size_t vec = n & ~std::size_t{3};
    table_slice_avx2(z, cls, lut, vec);
    z += vec;
    cls += vec;
    n -= vec;
  }
#endif
  (void)use_simd;
  table_slice_scalar(z, cls, lut, n);
}

void single_pairs(cplx* a, cplx* b, std::size_t n, const cplx* m,
                  bool use_simd) {
#if QARCH_SIMD_X86
  if (use_simd && active()) {
    const std::size_t vec = n & ~std::size_t{1};
    single_pairs_avx2(a, b, vec, m);
    a += vec;
    b += vec;
    n -= vec;
  }
#endif
  (void)use_simd;
  single_pairs_scalar(a, b, n, m);
}

void single_pair_range(cplx* z, std::size_t q, const cplx* m, std::size_t klo,
                       std::size_t khi, bool use_simd) {
  if (q == 0) {
#if QARCH_SIMD_X86
    if (use_simd && active()) {
      const std::size_t kvec = klo + ((khi - klo) & ~std::size_t{1});
      single_q0_avx2(z, m, klo, kvec);
      klo = kvec;
    }
#endif
    for (std::size_t k = klo; k < khi; ++k) {
      const cplx va = z[2 * k], vb = z[2 * k + 1];
      z[2 * k] = m[0] * va + m[1] * vb;
      z[2 * k + 1] = m[2] * va + m[3] * vb;
    }
    return;
  }
  // Pair index k walks bit-q=0 amplitudes in order; consecutive k within one
  // 2^q run map to CONTIGUOUS i0, so the walk decomposes into paired
  // contiguous segments.
  const std::size_t half = std::size_t{1} << q;
  std::size_t k = klo;
  while (k < khi) {
    const std::size_t off = k & (half - 1);
    const std::size_t i0 = ((k >> q) << (q + 1)) | off;
    const std::size_t len = std::min(khi - k, half - off);
    single_pairs(z + i0, z + i0 + half, len, m, use_simd);
    k += len;
  }
}

void two_quad_range(cplx* z, std::size_t q0, std::size_t q1, const cplx* m,
                    std::size_t klo, std::size_t khi) {
  const std::size_t mask0 = std::size_t{1} << q0;  // high bit of the 4x4 basis
  const std::size_t mask1 = std::size_t{1} << q1;  // low bit
  const std::size_t lo_mask = std::min(mask0, mask1) - 1;
  const std::size_t mid_mask =
      (std::max(mask0, mask1) - 1) ^ lo_mask ^ std::min(mask0, mask1);
  for (std::size_t k = klo; k < khi; ++k) {
    // Spread k across the two bit holes (q0 and q1 forced to 0).
    const std::size_t low = k & lo_mask;
    const std::size_t mid = (k << 1) & mid_mask;
    const std::size_t high = (k << 2) & ~(lo_mask | mid_mask | mask0 | mask1);
    const std::size_t base = high | mid | low;
    const std::size_t i00 = base;
    const std::size_t i01 = base | mask1;
    const std::size_t i10 = base | mask0;
    const std::size_t i11 = base | mask0 | mask1;
    const cplx v0 = z[i00], v1 = z[i01], v2 = z[i10], v3 = z[i11];
    z[i00] = m[0] * v0 + m[1] * v1 + m[2] * v2 + m[3] * v3;
    z[i01] = m[4] * v0 + m[5] * v1 + m[6] * v2 + m[7] * v3;
    z[i10] = m[8] * v0 + m[9] * v1 + m[10] * v2 + m[11] * v3;
    z[i11] = m[12] * v0 + m[13] * v1 + m[14] * v2 + m[15] * v3;
  }
}

void zz_accumulate(const cplx* state, std::size_t lo, std::size_t hi,
                   const std::size_t* masks, std::size_t num_masks,
                   double* acc, bool use_simd) {
#if QARCH_SIMD_X86
  if (use_simd && active()) {
    // Scalar head/tail bring the vector body onto 4-aligned groups.
    const std::size_t alo = std::min(hi, (lo + 3) & ~std::size_t{3});
    const std::size_t ahi = std::max(alo, hi & ~std::size_t{3});
    if (alo > lo) zz_accumulate_scalar(state, lo, alo, masks, num_masks, acc);
    if (ahi > alo)
      zz_accumulate_avx2(state, alo, ahi, masks, num_masks, acc);
    if (hi > ahi) zz_accumulate_scalar(state, ahi, hi, masks, num_masks, acc);
    return;
  }
#endif
  (void)use_simd;
  zz_accumulate_scalar(state, lo, hi, masks, num_masks, acc);
}

void cplx_mul_runs(cplx* acc, const cplx* x, std::size_t n, bool use_simd) {
#if QARCH_SIMD_X86
  if (use_simd && active()) {
    const std::size_t vec = n & ~std::size_t{1};
    cplx_mul_runs_avx2(acc, x, vec);
    acc += vec;
    x += vec;
    n -= vec;
  }
#endif
  (void)use_simd;
  cplx_mul_runs_scalar(acc, x, n);
}

void cplx_add_runs(cplx* out, const cplx* a, const cplx* b, std::size_t n,
                   bool use_simd) {
#if QARCH_SIMD_X86
  if (use_simd && active()) {
    const std::size_t vec = n & ~std::size_t{1};
    cplx_add_runs_avx2(out, a, b, vec);
    out += vec;
    a += vec;
    b += vec;
    n -= vec;
  }
#endif
  (void)use_simd;
  cplx_add_runs_scalar(out, a, b, n);
}

}  // namespace qarch::sim::simd
