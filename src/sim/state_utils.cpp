#include "sim/state_utils.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qarch::sim {

cplx overlap(const State& a, const State& b) {
  QARCH_REQUIRE(a.size() == b.size(), "state size mismatch");
  return linalg::inner(a, b);
}

double fidelity(const State& a, const State& b) {
  return std::norm(overlap(a, b));
}

int measure_qubit(State& state, std::size_t q, Rng& rng) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(q < n, "qubit out of range");
  const std::size_t mask = std::size_t{1} << q;

  double p1 = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i)
    if (i & mask) p1 += std::norm(state[i]);

  const int outcome = rng.uniform() < p1 ? 1 : 0;
  const double keep_prob = outcome == 1 ? p1 : 1.0 - p1;
  QARCH_CHECK(keep_prob > 1e-300, "measured a zero-probability branch");
  const double scale = 1.0 / std::sqrt(keep_prob);
  for (std::size_t i = 0; i < state.size(); ++i) {
    const bool bit = (i & mask) != 0;
    if (bit == (outcome == 1))
      state[i] *= scale;
    else
      state[i] = cplx{0.0, 0.0};
  }
  return outcome;
}

double measurement_entropy(const State& state) {
  double h = 0.0;
  for (const cplx& amp : state) {
    const double p = std::norm(amp);
    if (p > 1e-300) h -= p * std::log2(p);
  }
  return h;
}

double total_variation_distance(const State& a, const State& b) {
  QARCH_REQUIRE(a.size() == b.size(), "state size mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d += std::abs(std::norm(a[i]) - std::norm(b[i]));
  return d / 2.0;
}

}  // namespace qarch::sim
