#include "sim/state_utils.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/simd.hpp"

namespace qarch::sim {

std::vector<double> batched_expectation_zz(
    const State& state, std::span<const ZZPair> pairs, std::size_t workers,
    std::size_t parallel_threshold_qubits, bool use_simd) {
  const std::size_t n = state_qubits(state);
  std::vector<std::size_t> masks(pairs.size());
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const auto [u, v] = pairs[k];
    QARCH_REQUIRE(u < n && v < n && u != v, "bad ZZ qubit pair");
    masks[k] = (std::size_t{1} << u) | (std::size_t{1} << v);
  }
  if (pairs.empty()) return {};
  detail::note_expectation_sweep();

  // <Z_u Z_v> = sum_i sign(i) |a_i|^2 with sign +1 when bits u and v agree,
  // i.e. when popcount(i & (mu|mv)) is even. The per-block accumulation is
  // one SIMD pass scattering every amplitude's probability into all terms.
  const auto block = [&](std::size_t lo, std::size_t hi) {
    std::vector<double> partial(masks.size(), 0.0);
    simd::zz_accumulate(state.data(), lo, hi, masks.data(), masks.size(),
                        partial.data(), use_simd);
    return partial;
  };
  const auto combine = [](std::vector<double> acc, std::vector<double> part) {
    for (std::size_t k = 0; k < part.size(); ++k) acc[k] += part[k];
    return acc;
  };

  if (workers <= 1 || n < parallel_threshold_qubits)
    return block(0, state.size());
  return parallel::parallel_reduce(0, state.size(),
                                   std::vector<double>(masks.size(), 0.0),
                                   block, combine, workers);
}

cplx overlap(const State& a, const State& b) {
  QARCH_REQUIRE(a.size() == b.size(), "state size mismatch");
  return linalg::inner(a, b);
}

double fidelity(const State& a, const State& b) {
  return std::norm(overlap(a, b));
}

int measure_qubit(State& state, std::size_t q, Rng& rng) {
  const std::size_t n = state_qubits(state);
  QARCH_REQUIRE(q < n, "qubit out of range");
  const std::size_t mask = std::size_t{1} << q;

  double p1 = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i)
    if (i & mask) p1 += std::norm(state[i]);

  const int outcome = rng.uniform() < p1 ? 1 : 0;
  const double keep_prob = outcome == 1 ? p1 : 1.0 - p1;
  QARCH_CHECK(keep_prob > 1e-300, "measured a zero-probability branch");
  const double scale = 1.0 / std::sqrt(keep_prob);
  for (std::size_t i = 0; i < state.size(); ++i) {
    const bool bit = (i & mask) != 0;
    if (bit == (outcome == 1))
      state[i] *= scale;
    else
      state[i] = cplx{0.0, 0.0};
  }
  return outcome;
}

double measurement_entropy(const State& state) {
  double h = 0.0;
  for (const cplx& amp : state) {
    const double p = std::norm(amp);
    if (p > 1e-300) h -= p * std::log2(p);
  }
  return h;
}

double total_variation_distance(const State& a, const State& b) {
  QARCH_REQUIRE(a.size() == b.size(), "state size mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d += std::abs(std::norm(a[i]) - std::norm(b[i]));
  return d / 2.0;
}

}  // namespace qarch::sim
