#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace qarch::json {

Value Value::array() {
  Value v;
  v.type_ = Type::Array;
  return v;
}

Value Value::object() {
  Value v;
  v.type_ = Type::Object;
  return v;
}

bool Value::as_bool() const {
  QARCH_REQUIRE(type_ == Type::Bool, "json: not a bool");
  return bool_;
}

double Value::as_number() const {
  QARCH_REQUIRE(type_ == Type::Number, "json: not a number");
  return number_;
}

const std::string& Value::as_string() const {
  QARCH_REQUIRE(type_ == Type::String, "json: not a string");
  return string_;
}

void Value::push_back(Value v) {
  QARCH_REQUIRE(type_ == Type::Array, "json: push_back on non-array");
  array_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (type_ == Type::Array) return array_.size();
  if (type_ == Type::Object) return object_.size();
  throw InvalidArgument("json: size() on scalar");
}

const Value& Value::at(std::size_t index) const {
  QARCH_REQUIRE(type_ == Type::Array, "json: index into non-array");
  QARCH_REQUIRE(index < array_.size(), "json: array index out of range");
  return array_[index];
}

Value& Value::set(const std::string& key, Value v) {
  QARCH_REQUIRE(type_ == Type::Object, "json: set on non-object");
  return object_[key] = std::move(v);
}

bool Value::contains(const std::string& key) const {
  return type_ == Type::Object && object_.count(key) > 0;
}

const Value& Value::at(const std::string& key) const {
  QARCH_REQUIRE(type_ == Type::Object, "json: key lookup on non-object");
  const auto it = object_.find(key);
  QARCH_REQUIRE(it != object_.end(), "json: missing key '" + key + "'");
  return it->second;
}

const std::map<std::string, Value>& Value::items() const {
  QARCH_REQUIRE(type_ == Type::Object, "json: items() on non-object");
  return object_;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : "";
  const char* nl = indent > 0 ? "\n" : "";

  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Number: number_into(out, number_); return;
    case Type::String: escape_into(out, string_); return;
    case Type::Array: {
      if (array_.empty()) { out += "[]"; return; }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      return;
    }
    case Type::Object: {
      if (object_.empty()) { out += "{}"; return; }
      out += '{';
      out += nl;
      std::size_t i = 0;
      for (const auto& [k, v] : object_) {
        out += pad;
        escape_into(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
        if (++i < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      return;
    }
  }
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    const Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::ostringstream os;
    os << "json parse error at offset " << pos_ << ": " << msg;
    throw InvalidArgument(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') { ++pos_; return obj; }
    for (;;) {
      const std::string key = parse_string();
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      if (c == ',') { ++pos_; continue; }
      if (c == '}') { ++pos_; return obj; }
      fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') { ++pos_; return arr; }
    for (;;) {
      arr.push_back(parse_value());
      const char c = peek();
      if (c == ',') { ++pos_; continue; }
      if (c == ']') { ++pos_; return arr; }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const auto code = static_cast<unsigned>(
                std::strtoul(hex.c_str(), nullptr, 16));
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else {
              // Outside ASCII: emit UTF-8 for the BMP code point.
              if (code < 0x800) {
                out += static_cast<char>(0xC0 | (code >> 6));
              } else {
                out += static_cast<char>(0xE0 | (code >> 12));
                out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              }
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
      any = true;
    }
    if (!any) fail("expected a value");
    try {
      return Value(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace qarch::json
