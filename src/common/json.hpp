// Minimal JSON value model, serializer, and parser.
//
// Used to persist search reports and benchmark series (EXPERIMENTS.md data
// provenance) and to reload them for comparison runs. Supports the full JSON
// grammar except for \u escapes beyond ASCII (emitted verbatim).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qarch::json {

/// A JSON value (null, bool, number, string, array, or object).
class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() : type_(Type::Null) {}
  Value(std::nullptr_t) : type_(Type::Null) {}            // NOLINT(runtime/explicit)
  Value(bool b) : type_(Type::Bool), bool_(b) {}          // NOLINT(runtime/explicit)
  Value(double n) : type_(Type::Number), number_(n) {}    // NOLINT(runtime/explicit)
  Value(int n) : Value(static_cast<double>(n)) {}         // NOLINT(runtime/explicit)
  Value(std::size_t n) : Value(static_cast<double>(n)) {} // NOLINT(runtime/explicit)
  Value(const char* s) : type_(Type::String), string_(s) {}  // NOLINT
  Value(std::string s) : type_(Type::String), string_(std::move(s)) {}  // NOLINT

  /// Builds an empty array value.
  static Value array();

  /// Builds an empty object value.
  static Value object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }

  // -- typed accessors (throw InvalidArgument on type mismatch) -------------
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  // -- array interface -------------------------------------------------------
  /// Appends to an array value (must be Array).
  void push_back(Value v);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Value& at(std::size_t index) const;

  // -- object interface -------------------------------------------------------
  /// Inserts/overwrites a key of an object value (must be Object).
  Value& set(const std::string& key, Value v);
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, Value>& items() const;

  /// Serializes to compact JSON; `indent` > 0 pretty-prints.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses a JSON document; throws InvalidArgument with offset context on
/// malformed input.
Value parse(const std::string& text);

}  // namespace qarch::json
