#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qarch {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits → uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  QARCH_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  QARCH_REQUIRE(n > 0, "uniform_int(n) needs n > 0");
  // Lemire's rejection method: unbiased and branch-light.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller on (0,1] uniforms to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double prob) { return uniform() < prob; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  return idx;
}

Rng Rng::split() { return Rng((*this)() ^ 0xa5a5a5a5deadbeefULL); }

RngState Rng::state() const {
  return RngState{state_, cached_normal_, has_cached_normal_};
}

void Rng::restore(const RngState& s) {
  state_ = s.words;
  cached_normal_ = s.cached_normal;
  has_cached_normal_ = s.has_cached_normal;
}

}  // namespace qarch
