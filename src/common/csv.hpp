// Small CSV writer used by bench harnesses to dump figure data series.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace qarch {

/// Row-oriented CSV writer. Escapes fields containing separators/quotes.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row of string fields. Field count must match the header.
  void row(const std::vector<std::string>& fields);

  /// Appends one row of numeric fields (formatted with %.6g).
  void row(const std::vector<double>& fields);

  /// Flushes and closes; further rows are an error. Destructor also closes.
  void close();

 private:
  void write_row(const std::vector<std::string>& fields);
  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace qarch
