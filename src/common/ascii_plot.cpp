#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace qarch {

namespace {
constexpr char kMarkers[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
}

AsciiPlot::AsciiPlot(std::string title, std::string xlabel, std::string ylabel)
    : title_(std::move(title)),
      xlabel_(std::move(xlabel)),
      ylabel_(std::move(ylabel)) {}

void AsciiPlot::add(Series series) {
  QARCH_REQUIRE(series.x.size() == series.y.size(),
                "series x/y length mismatch");
  series_.push_back(std::move(series));
}

std::string AsciiPlot::render(int width, int height) const {
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  if (series_.empty()) return os.str() + "(no data)\n";

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (const auto& s : series_) {
    for (double v : s.x) { xmin = std::min(xmin, v); xmax = std::max(xmax, v); }
    for (double v : s.y) { ymin = std::min(ymin, v); ymax = std::max(ymax, v); }
  }
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;
  // Pad the y range slightly so extreme points are not on the border.
  const double ypad = 0.05 * (ymax - ymin);
  ymin -= ypad;
  ymax += ypad;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char mark = kMarkers[si % sizeof(kMarkers)];
    const auto& s = series_[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      int cx = static_cast<int>(std::lround((s.x[i] - xmin) / (xmax - xmin) *
                                            (width - 1)));
      int cy = static_cast<int>(std::lround((s.y[i] - ymin) / (ymax - ymin) *
                                            (height - 1)));
      cx = std::clamp(cx, 0, width - 1);
      cy = std::clamp(cy, 0, height - 1);
      grid[static_cast<std::size_t>(height - 1 - cy)]
          [static_cast<std::size_t>(cx)] = mark;
    }
  }

  char buf[32];
  std::snprintf(buf, sizeof buf, "%10.4g", ymax);
  os << buf << " +" << std::string(static_cast<std::size_t>(width), '-')
     << "+\n";
  for (int r = 0; r < height; ++r) {
    os << std::string(10, ' ') << " |" << grid[static_cast<std::size_t>(r)]
       << "|\n";
  }
  std::snprintf(buf, sizeof buf, "%10.4g", ymin);
  os << buf << " +" << std::string(static_cast<std::size_t>(width), '-')
     << "+\n";
  std::snprintf(buf, sizeof buf, "%.4g", xmin);
  std::string xlo = buf;
  std::snprintf(buf, sizeof buf, "%.4g", xmax);
  std::string xhi = buf;
  os << std::string(12, ' ') << xlo
     << std::string(
            std::max<std::size_t>(
                1, static_cast<std::size_t>(width) - xlo.size() - xhi.size()),
            ' ')
     << xhi << "\n";
  os << std::string(12, ' ') << "x: " << xlabel_ << ", y: " << ylabel_ << "\n";
  for (std::size_t si = 0; si < series_.size(); ++si)
    os << std::string(12, ' ') << kMarkers[si % sizeof(kMarkers)] << " = "
       << series_[si].name << "\n";
  return os.str();
}

std::string ascii_barh(const std::string& title,
                       const std::vector<std::pair<std::string, double>>& bars,
                       int width, double vmin, double vmax) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  if (bars.empty()) return os.str() + "(no data)\n";
  double lo = vmin, hi = vmax;
  if (lo == 0.0 && hi == 0.0) {
    lo = 0.0;
    hi = -std::numeric_limits<double>::infinity();
    for (const auto& [_, v] : bars) hi = std::max(hi, v);
    if (hi <= lo) hi = lo + 1;
  }
  std::size_t label_width = 0;
  for (const auto& [name, _] : bars) label_width = std::max(label_width, name.size());
  for (const auto& [name, v] : bars) {
    const double frac = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
    const int len = static_cast<int>(std::lround(frac * width));
    char buf[32];
    std::snprintf(buf, sizeof buf, "%8.4f", v);
    os << "  " << name << std::string(label_width - name.size(), ' ') << " |"
       << std::string(static_cast<std::size_t>(len), '#')
       << std::string(static_cast<std::size_t>(width - len), ' ') << "| " << buf
       << "\n";
  }
  return os.str();
}

}  // namespace qarch
