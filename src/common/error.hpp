// Error handling primitives shared by every qarch module.
//
// The library throws `qarch::Error` (derived from std::runtime_error) for
// user-visible failures and uses QARCH_CHECK for internal invariants that
// indicate a programming error. Following the C++ Core Guidelines (E.2), we
// throw exceptions rather than return error codes; all library types are
// exception-safe via RAII.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qarch {

/// Base exception for every error raised by the qarch library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a function argument is outside its documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when an internal invariant is violated (library bug).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "QARCH_REQUIRE") throw InvalidArgument(os.str());
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace qarch

/// Internal invariant; failure means a bug inside the library.
#define QARCH_CHECK(cond, msg)                                               \
  do {                                                                       \
    if (!(cond))                                                             \
      ::qarch::detail::throw_check_failure("QARCH_CHECK", #cond, __FILE__,   \
                                           __LINE__, (msg));                 \
  } while (0)

/// Precondition on user-supplied arguments; failure throws InvalidArgument.
#define QARCH_REQUIRE(cond, msg)                                             \
  do {                                                                       \
    if (!(cond))                                                             \
      ::qarch::detail::throw_check_failure("QARCH_REQUIRE", #cond, __FILE__, \
                                           __LINE__, (msg));                 \
  } while (0)
