// Thread-safety annotations and the lock primitives built on them.
//
// This header is the ONLY place in the repo allowed to name the raw standard
// primitives (`std::mutex`, `std::lock_guard`, `std::condition_variable`);
// everything else uses `qarch::Mutex` / `qarch::LockGuard` /
// `qarch::UniqueLock` / `qarch::CondVar` so that
//
//   1. Clang's `-Wthread-safety` analysis sees every acquire/release
//      (libstdc++'s own lock types carry no annotations, so raw
//      `std::lock_guard` is invisible to the analysis), and
//   2. debug/sanitizer builds get the runtime lock-order checker in
//      lock_order.hpp for free on every ranked mutex.
//
// `tools/qarch_lint.py` enforces the "no raw primitives" rule in CI.
//
// The macros follow the abseil `thread_annotation.h` naming and expand to
// nothing on compilers without the attributes (GCC builds are unaffected).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_order.hpp"

#if defined(__clang__) && defined(__has_attribute)
#define QARCH_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define QARCH_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

// On a class: instances are a lockable capability ("mutex").
#define QARCH_CAPABILITY(x) QARCH_THREAD_ANNOTATION(capability(x))
// On a class: RAII object that holds a capability for its lifetime.
#define QARCH_SCOPED_CAPABILITY QARCH_THREAD_ANNOTATION(scoped_lockable)
// On a member: reads/writes require the given capability to be held.
#define QARCH_GUARDED_BY(x) QARCH_THREAD_ANNOTATION(guarded_by(x))
// On a pointer member: the pointed-to data requires the capability.
#define QARCH_PT_GUARDED_BY(x) QARCH_THREAD_ANNOTATION(pt_guarded_by(x))
// On a function: caller must already hold the capability.
#define QARCH_REQUIRES(...) \
  QARCH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// On a function: acquires the capability (held on return).
#define QARCH_ACQUIRE(...) \
  QARCH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
// On a function: releases the capability (no longer held on return).
#define QARCH_RELEASE(...) \
  QARCH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// On a function: returns true iff the capability was acquired.
#define QARCH_TRY_ACQUIRE(...) \
  QARCH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// On a function: caller must NOT hold the capability (deadlock guard).
#define QARCH_EXCLUDES(...) QARCH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// On a function: promises (without proof) that the capability is held.
// Used at aliasing sites the analysis cannot follow — see Mutex::assert_held.
#define QARCH_ASSERT_CAPABILITY(x) \
  QARCH_THREAD_ANNOTATION(assert_capability(x))
// On a function: opt out of the analysis (constructors/destructors that
// touch guarded members before/after any concurrency is possible).
#define QARCH_NO_THREAD_SAFETY_ANALYSIS \
  QARCH_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace qarch {

// Annotated mutex. Default-constructed mutexes behave exactly like
// std::mutex; passing a rank (see lock_order.hpp for the repo's tiers) opts
// the mutex into the runtime lock-order checker in debug/sanitizer builds.
// In release builds the rank/name are discarded at construction and the type
// is layout-identical to std::mutex — zero overhead, compile-time gated.
class QARCH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#if QARCH_LOCK_ORDER_CHECK
  Mutex(int rank, const char* name) : rank_(rank), name_(name) {}
#else
  Mutex(int /*rank*/, const char* /*name*/) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QARCH_ACQUIRE() {
#if QARCH_LOCK_ORDER_CHECK
    lock_order::on_acquire(this, rank_, name_);
#endif
    m_.lock();
  }

  void unlock() QARCH_RELEASE() {
    m_.unlock();
#if QARCH_LOCK_ORDER_CHECK
    lock_order::on_release(this);
#endif
  }

  bool try_lock() QARCH_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
#if QARCH_LOCK_ORDER_CHECK
    // try_lock cannot deadlock, but a successful acquisition still
    // participates in the held stack so later lock() calls are checked.
    lock_order::on_acquire(this, rank_, name_);
#endif
    return true;
  }

  // Tell the static analysis this mutex is held when the proof is defeated
  // by aliasing (e.g. `job->service->mutex` locked through another name for
  // the same ServiceState). The claim is checked at runtime in debug builds.
  void assert_held() QARCH_ASSERT_CAPABILITY(this) {
#if QARCH_LOCK_ORDER_CHECK
    lock_order::assert_held(this, name_);
#endif
  }

  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
#if QARCH_LOCK_ORDER_CHECK
  int rank_ = lock_order::kUnranked;
  const char* name_ = nullptr;
#endif
};

#if !QARCH_LOCK_ORDER_CHECK
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "release-mode Mutex must add nothing over std::mutex");
#endif

// Scoped lock, annotated. Equivalent to std::lock_guard<qarch::Mutex>.
class QARCH_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) QARCH_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() QARCH_RELEASE() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

// Movable-state scoped lock supporting early unlock / re-lock, for
// condition-variable waits and the unlock-call-relock pattern in the
// service. Equivalent to std::unique_lock<qarch::Mutex>.
class QARCH_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) QARCH_ACQUIRE(m) : m_(&m) {
    m_->lock();
    held_ = true;
  }
  ~UniqueLock() QARCH_RELEASE() {
    if (held_) m_->unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() QARCH_ACQUIRE() {
    m_->lock();
    held_ = true;
  }
  void unlock() QARCH_RELEASE() {
    held_ = false;
    m_->unlock();
  }
  bool owns_lock() const { return held_; }
  Mutex& mutex() { return *m_; }

 private:
  friend class CondVar;
  Mutex* m_;
  bool held_ = false;
};

// Condition variable working on qarch::Mutex via UniqueLock.
//
// No predicate overloads on purpose: `cv.wait(lock, [&]{ ...guarded... })`
// puts guarded reads inside a lambda the thread-safety analysis treats as an
// unannotated function, producing false positives. Call sites spell the loop
//   while (!condition) cv.wait(lock);
// so the guarded reads stay in the annotated scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lock) {
#if QARCH_LOCK_ORDER_CHECK
    // The wait releases and reacquires the mutex; mirror that in the
    // checker's held stack so sibling threads' acquisitions are judged
    // against the true held set.
    const lock_order::HeldEntry popped = lock_order::on_release(lock.m_);
#endif
    std::unique_lock<std::mutex> native(lock.m_->native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
#if QARCH_LOCK_ORDER_CHECK
    lock_order::on_acquire(lock.m_, popped.rank, popped.name);
#endif
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
#if QARCH_LOCK_ORDER_CHECK
    const lock_order::HeldEntry popped = lock_order::on_release(lock.m_);
#endif
    std::unique_lock<std::mutex> native(lock.m_->native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
#if QARCH_LOCK_ORDER_CHECK
    lock_order::on_acquire(lock.m_, popped.rank, popped.name);
#endif
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return wait_until(lock, std::chrono::steady_clock::now() + timeout);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qarch
