// Descriptive statistics helpers for benchmark reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace qarch {

/// Arithmetic mean. Requires a non-empty sample.
inline double mean(std::span<const double> xs) {
  QARCH_REQUIRE(!xs.empty(), "mean of empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Sample standard deviation (n-1 denominator); 0 for singleton samples.
inline double stddev(std::span<const double> xs) {
  QARCH_REQUIRE(!xs.empty(), "stddev of empty sample");
  if (xs.size() == 1) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

/// Median (copies and sorts the sample).
inline double median(std::span<const double> xs) {
  QARCH_REQUIRE(!xs.empty(), "median of empty sample");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Minimum element.
inline double min_value(std::span<const double> xs) {
  QARCH_REQUIRE(!xs.empty(), "min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

/// Maximum element.
inline double max_value(std::span<const double> xs) {
  QARCH_REQUIRE(!xs.empty(), "max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

}  // namespace qarch
