// Tiny command-line flag parser for examples and bench binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace qarch {

/// Parses argv into a flag map and exposes typed accessors with defaults.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True when `--name` was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// String flag value or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;

  /// Integer flag value or `fallback` when absent. Throws on parse failure.
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;

  /// Double flag value or `fallback` when absent. Throws on parse failure.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace qarch
