// Deterministic pseudo-random number generation for the whole library.
//
// We implement xoshiro256** (Blackman & Vigna) rather than relying on
// std::mt19937 so that results are bit-identical across standard libraries —
// benchmark workloads (random graphs, random search) must be reproducible.
// The generator satisfies the C++ UniformRandomBitGenerator concept so it can
// also feed <random> distributions when convenient.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace qarch {

/// Complete serializable snapshot of an Rng: the xoshiro words plus the
/// Box–Muller cache. Restoring it continues the exact variate stream —
/// including a pending cached normal — which is what makes SPSA/multistart
/// training runs resumable bit-for-bit after a preemption checkpoint.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// xoshiro256** 1.0 — a fast, high-quality 64-bit PRNG with 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal variate (Box–Muller, cached pair).
  double normal();

  /// Normal variate with given mean and stddev.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability prob.
  bool bernoulli(double prob);

  /// Uniformly random index permutation of {0, .., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Fisher–Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_int(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-thread streams).
  Rng split();

  /// Snapshots the full generator state (words + Box–Muller cache).
  [[nodiscard]] RngState state() const;

  /// Restores a snapshot taken by state(); the stream continues exactly.
  void restore(const RngState& s);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace qarch
