// Runtime lock-order checker (debug/sanitizer builds only).
//
// Every `qarch::Mutex` constructed with a (rank, name) pair participates in
// two checks on each acquisition, abseil DeadlockCheck-style:
//
//   1. **Rank check** — a thread may only acquire a mutex whose rank is
//      >= the highest rank it already holds. Acquiring downward through the
//      hierarchy aborts immediately with both lock names and the full held
//      stack, even if this particular interleaving would not have
//      deadlocked.
//   2. **Acquired-order graph** — every (held → acquired) name pair is
//      recorded in a global digraph; an edge that closes a cycle (i.e. the
//      opposite order was observed earlier, possibly on another thread or
//      through a chain of intermediates) aborts with both lock names and
//      the previously established path. This catches inversions between
//      equal-rank mutexes and across translation units that the static
//      `-Wthread-safety` pass cannot see.
//
// The checker is compiled out entirely in release builds (`NDEBUG`):
// `qarch::Mutex` is then layout-identical to `std::mutex` and `lock()` is a
// plain forwarding call — zero overhead, enforced by a static_assert in
// annotations.hpp. Define `QARCH_LOCK_ORDER_CHECK=1` explicitly to force it
// on in an optimized build.
//
// ## The lock hierarchy
//
// Ranks ascend from the outermost tier (acquired first) to the innermost
// leaves. A thread holding a lock may only acquire strictly deeper (or
// independent equal-rank) locks. Current tiers:
//
//   rank  name                 mutex
//   ----  -------------------  ------------------------------------------
//    10   server.wire          QarchServer::Impl::mutex (tenants, tickets,
//                              counters; held across EvalService calls)
//    12   server.connqueue     QarchServer::Impl::conn_mutex (accepted
//                              socket handoff to the IO threads)
//    20   service.io           ServiceState::io_mutex (checkpoint/cache
//                              file writes; taken BEFORE service.state)
//    30   service.state        ServiceState::mutex (scheduler, stats,
//                              result cache index, checkpoints)
//    40   service.job          detail::EvalJob::mutex (per-job status /
//                              result / waiters; never held together with
//                              service.state — the code always releases
//                              one before taking the other, but the server
//                              tier polls tickets under server.wire)
//    50   cache.energyplans    EnergyEvaluator::PlanCache::mutex (the
//                              per-evaluator compiled-plan LRU)
//    52   cache.orders         qtensor::PlanCache::mutex_ (persistent
//                              elimination-order cache; taken under
//                              service.io during persistence)
//    60   cache.scratch        ContractionProgram / query program scratch
//                              pools (pool_mutex_)
//    70   pool.queue           parallel::ThreadPool::mutex_ (task queue;
//                              acquired under server.wire via submit())
//    80   fault.injector       search::FaultInjector::mutex_
//    85   parallel.errors      parallel_for / dataset error collection
//    90   log.write            common/log.cpp g_write_mutex (log lines are
//                              emitted under service.io on persist errors)
//
// **Adding a new mutex:** pick the tier that matches the outermost lock
// that can be held while yours is acquired, give it a rank strictly above
// that tier (leave gaps — they are cheap), register the tier both here and
// in the "Lock hierarchy" sections of src/search/README.md /
// src/server/README.md, and construct it as
// `qarch::Mutex{rank, "tier.name"}`. Unranked (default-constructed)
// mutexes are invisible to the checker; use them only for locals whose
// scope makes ordering trivially correct.
#pragma once

#if !defined(QARCH_LOCK_ORDER_CHECK)
#if !defined(NDEBUG)
#define QARCH_LOCK_ORDER_CHECK 1
#else
#define QARCH_LOCK_ORDER_CHECK 0
#endif
#endif

#if QARCH_LOCK_ORDER_CHECK

namespace qarch {
namespace lock_order {

inline constexpr int kUnranked = -1;

struct HeldEntry {
  const void* mutex = nullptr;
  int rank = kUnranked;
  const char* name = nullptr;
};

// Called immediately BEFORE blocking on the mutex, so an ordering violation
// aborts instead of deadlocking. No-op for unranked mutexes.
void on_acquire(const void* mutex, int rank, const char* name);

// Pops the mutex from this thread's held stack. Returns the popped entry so
// condition-variable waits can re-push it on wakeup ({.rank = kUnranked} if
// the mutex was not tracked).
HeldEntry on_release(const void* mutex);

// Aborts unless the calling thread's held stack contains `mutex`. Backs
// Mutex::assert_held at static-analysis aliasing sites.
void assert_held(const void* mutex, const char* name);

// Number of ranked locks the calling thread currently holds (test hook).
int held_count();

}  // namespace lock_order
}  // namespace qarch

#endif  // QARCH_LOCK_ORDER_CHECK
