// Terminal plotting for benchmark output.
//
// The paper's evaluation consists of figures; our bench binaries print each
// figure's data both as a table and as an ASCII rendering so the "shape" of
// the result (who wins, where the crossover falls) is visible in plain text.
#pragma once

#include <string>
#include <vector>

namespace qarch {

/// A named data series for AsciiPlot.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Renders one or more (x, y) series as an ASCII line/scatter chart.
class AsciiPlot {
 public:
  AsciiPlot(std::string title, std::string xlabel, std::string ylabel);

  /// Adds a series; each series gets a distinct marker character.
  void add(Series series);

  /// Renders the chart (width x height characters of plotting area).
  [[nodiscard]] std::string render(int width = 64, int height = 18) const;

 private:
  std::string title_, xlabel_, ylabel_;
  std::vector<Series> series_;
};

/// Renders a horizontal bar chart: one labeled bar per entry.
/// Used for the categorical figures (Fig. 7 approximation ratios, Fig. 8/9
/// baseline-vs-qnas comparisons).
std::string ascii_barh(const std::string& title,
                       const std::vector<std::pair<std::string, double>>& bars,
                       int width = 48, double vmin = 0.0, double vmax = 0.0);

}  // namespace qarch
