#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace qarch {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";  // boolean switch
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& name, long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  QARCH_REQUIRE(end != it->second.c_str() && *end == '\0',
                "flag --" + name + " is not an integer: " + it->second);
  return v;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  QARCH_REQUIRE(end != it->second.c_str() && *end == '\0',
                "flag --" + name + " is not a number: " + it->second);
  return v;
}

}  // namespace qarch
