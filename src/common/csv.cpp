#include "common/csv.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace qarch {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  QARCH_REQUIRE(!header.empty(), "CSV header must be non-empty");
  if (!out_) throw Error("CsvWriter: cannot open " + path);
  write_row(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  QARCH_REQUIRE(fields.size() == columns_, "CSV row width mismatch");
  write_row(fields);
}

void CsvWriter::row(const std::vector<double>& fields) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  char buf[64];
  for (double v : fields) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
    text.emplace_back(buf);
  }
  row(text);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace qarch
