// Minimal leveled logger. Thread-safe; writes to stderr.
//
// Levels follow the usual severity order. The default level is Info; set
// QARCH_LOG=debug|info|warn|error in the environment or call set_level().
#pragma once

#include <sstream>
#include <string>

namespace qarch::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum severity that will be emitted.
void set_level(Level level);

/// Current global minimum severity.
Level level();

/// Emits one formatted line (internal; prefer the convenience wrappers).
void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::Debug)
    write(Level::Debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::Info)
    write(Level::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::Warn)
    write(Level::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::Error)
    write(Level::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace qarch::log
