// Runtime lock-order checker implementation. See lock_order.hpp for the
// hierarchy and the two checks (rank + acquired-order graph).
//
// This file (with annotations.hpp) is the sanctioned home of the raw
// standard primitives; the checker cannot be built on qarch::Mutex without
// recursing into itself.
#include "common/lock_order.hpp"

#if QARCH_LOCK_ORDER_CHECK

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace qarch {
namespace lock_order {
namespace {

thread_local std::vector<HeldEntry> t_held;

// Acquired-order digraph over tier names: edge u -> v means "a thread held
// u while acquiring v". Guarded by g_graph_mutex. Names are interned via
// std::string keys so the graph stays valid after a mutex is destroyed.
std::mutex g_graph_mutex;
std::map<std::string, std::set<std::string>>& graph() {
  static auto* g = new std::map<std::string, std::set<std::string>>();
  return *g;
}

// Requires g_graph_mutex. Depth-first reachability: is `to` reachable from
// `from` along recorded acquired-before edges?
bool reachable(const std::string& from, const std::string& to,
               std::set<std::string>& seen) {
  if (from == to) return true;
  if (!seen.insert(from).second) return false;
  auto it = graph().find(from);
  if (it == graph().end()) return false;
  for (const auto& next : it->second) {
    if (reachable(next, to, seen)) return true;
  }
  return false;
}

[[noreturn]] void die(const char* kind, const HeldEntry& held, int rank,
                      const char* name) {
  std::fprintf(stderr,
               "qarch: lock-order violation (%s): acquiring \"%s\" (rank %d) "
               "while holding \"%s\" (rank %d)\n",
               kind, name ? name : "?", rank, held.name ? held.name : "?",
               held.rank);
  std::fprintf(stderr, "qarch: held-lock stack (outermost first):\n");
  for (const auto& e : t_held) {
    std::fprintf(stderr, "qarch:   \"%s\" (rank %d)\n",
                 e.name ? e.name : "?", e.rank);
  }
  std::fprintf(stderr,
               "qarch: see src/common/lock_order.hpp for the hierarchy\n");
  std::abort();
}

}  // namespace

void on_acquire(const void* mutex, int rank, const char* name) {
  if (rank == kUnranked) return;
  for (const HeldEntry& held : t_held) {
    if (held.mutex == mutex) {
      std::fprintf(stderr,
                   "qarch: recursive acquisition of \"%s\" (rank %d)\n",
                   name ? name : "?", rank);
      std::abort();
    }
    if (rank < held.rank) die("rank inversion", held, rank, name);
  }
  // Record (held -> acquired) edges and reject any that closes a cycle.
  // The rank check above already orders cross-tier pairs, so cycles can
  // only arise between equal-rank tiers — but recording every edge keeps
  // the graph a complete audit trail of observed orders.
  if (!t_held.empty() && name != nullptr) {
    std::lock_guard<std::mutex> g(g_graph_mutex);
    for (const HeldEntry& held : t_held) {
      if (held.name == nullptr || std::string(held.name) == name) continue;
      std::set<std::string> seen;
      if (reachable(name, held.name, seen)) {
        std::fprintf(stderr,
                     "qarch: previously observed order: \"%s\" before "
                     "\"%s\"\n",
                     name, held.name);
        die("order-graph cycle", held, rank, name);
      }
      graph()[held.name].insert(name);
    }
  }
  t_held.push_back(HeldEntry{mutex, rank, name});
}

HeldEntry on_release(const void* mutex) {
  // Locks are almost always released innermost-first, but UniqueLock's
  // early-unlock makes out-of-order release legal; erase wherever it sits.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mutex) {
      HeldEntry popped = *it;
      t_held.erase(std::next(it).base());
      return popped;
    }
  }
  return HeldEntry{};
}

void assert_held(const void* mutex, const char* name) {
  for (const HeldEntry& e : t_held) {
    if (e.mutex == mutex) return;
  }
  std::fprintf(stderr,
               "qarch: assert_held(\"%s\") failed: mutex is not on this "
               "thread's held stack\n",
               name ? name : "?");
  std::abort();
}

int held_count() { return static_cast<int>(t_held.size()); }

}  // namespace lock_order
}  // namespace qarch

#endif  // QARCH_LOCK_ORDER_CHECK
