#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#include "common/annotations.hpp"

namespace qarch::log {

namespace {

std::atomic<Level> g_level{Level::Info};
std::once_flag g_env_once;
// Innermost tier: log lines are emitted while holding service.io on
// checkpoint/cache persist errors (see lock_order.hpp).
Mutex g_write_mutex{90, "log.write"};

void init_from_env() {
  const char* env = std::getenv("QARCH_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) g_level = Level::Debug;
  else if (std::strcmp(env, "info") == 0) g_level = Level::Info;
  else if (std::strcmp(env, "warn") == 0) g_level = Level::Warn;
  else if (std::strcmp(env, "error") == 0) g_level = Level::Error;
  else if (std::strcmp(env, "off") == 0) g_level = Level::Off;
}

const char* level_name(Level l) {
  switch (l) {
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_level(Level level) { g_level = level; }

Level level() {
  std::call_once(g_env_once, init_from_env);
  return g_level.load(std::memory_order_relaxed);
}

void write(Level level, const std::string& message) {
  LockGuard lock(g_write_mutex);
  std::fprintf(stderr, "[qarch %s] %s\n", level_name(level), message.c_str());
}

}  // namespace qarch::log
