// Ablation: contraction-order optimizers (google-benchmark).
//
// Measures the contraction width achieved and the end-to-end <ZZ>
// contraction time of the QTensor simulator under each ordering heuristic,
// on the QAOA expectation networks the search actually contracts.
// Expected: greedy heuristics beat plain random ordering on width and time;
// random-restart closes most of the gap at extra ordering cost.
//
// The Compiled* cases benchmark the compiled-plan leg: every heuristic case
// above re-plans per call, while a qtensor::ContractionProgram pays
// planning once (CompiledProgramBuild) and then replays a rebind+schedule
// (CompiledReplay) — the per-theta cost the search pipeline actually sees.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "qtensor/contraction.hpp"
#include "qtensor/program.hpp"

using namespace qarch;

namespace {

struct Workload {
  circuit::Circuit ansatz;
  std::vector<double> theta;
  std::size_t u, v;
};

Workload make_workload(std::size_t p) {
  Rng rng(7);
  const auto g = graph::random_regular(10, 4, rng);
  auto c = qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::qnas());
  std::vector<double> theta(c.num_params(), 0.37);
  return {std::move(c), std::move(theta), g.edges()[0].u, g.edges()[0].v};
}

void run_case(benchmark::State& state, qtensor::OrderingAlgo algo) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(p);
  qtensor::QTensorOptions opt;
  opt.ordering = algo;
  const qtensor::QTensorSimulator sim(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.expectation_zz(w.ansatz, w.theta, w.u, w.v));
  }
  state.counters["width"] = static_cast<double>(
      sim.zz_width(w.ansatz, w.theta, w.u, w.v));
}

void BM_GreedyDegree(benchmark::State& state) {
  run_case(state, qtensor::OrderingAlgo::GreedyDegree);
}
void BM_GreedyFill(benchmark::State& state) {
  run_case(state, qtensor::OrderingAlgo::GreedyFill);
}
void BM_Random(benchmark::State& state) {
  run_case(state, qtensor::OrderingAlgo::Random);
}
void BM_RandomRestart(benchmark::State& state) {
  run_case(state, qtensor::OrderingAlgo::RandomRestart);
}

void BM_CompiledProgramBuild(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(p);
  for (auto _ : state) {
    const qtensor::ContractionProgram program(w.ansatz, w.u, w.v);
    benchmark::DoNotOptimize(&program);
  }
}

void BM_CompiledReplay(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(p);
  const qtensor::ContractionProgram program(w.ansatz, w.u, w.v);
  const qtensor::SerialCpuBackend backend;
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.expectation_zz(w.theta, backend));
  }
  state.counters["width"] = static_cast<double>(program.stats().width);
}

}  // namespace

BENCHMARK(BM_GreedyDegree)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GreedyFill)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);
// Plain random ordering reaches width ~26 on the p=2 network (a ~1 GiB
// intermediate tensor), so the random variants run at p=1 only — the width
// counters already tell the story.
BENCHMARK(BM_Random)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RandomRestart)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompiledProgramBuild)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompiledReplay)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
