// Ablation: contraction planning — serial bake-off vs the parallel,
// shape-deduplicated planner.
//
// Three legs, all on the QAOA <Z_u Z_v> lightcone networks the search
// actually contracts (3-regular graph, QNAS ansatz):
//
//   1. planning time: the OLD serial bake-off (each heuristic rebuilding its
//      own line graph, every candidate order costed by set-based symbolic
//      replay — faithfully re-implemented below as the reference) against
//      plan_contraction's hoisted line-graph/cost-model bitset planner with
//      speculative competitors fanned out over N workers,
//   2. shape dedup: distinct compiled programs == distinct lightcone shapes
//      (far below the edge count on regular graphs) via EnergyPlan::info(),
//   3. warm start: a plan-cache round trip through save/load_plan_cache —
//      the warm compile must invoke the planner ZERO times.
//
// Emits BENCH_qtensor.json section "planning".
//
// Flags: --n N (20) --degree D (3) --p P (2) --reps R (3) --workers W (8)
//        --restarts K (8) --out PATH (BENCH_qtensor.json)
//        --plan-cache-file PATH (bench_plan_cache.json scratch file)
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/energy.hpp"
#include "qtensor/network.hpp"
#include "qtensor/ordering.hpp"
#include "qtensor/plan_cache.hpp"
#include "qtensor/planner.hpp"
#include "search/report_io.hpp"

using namespace qarch;

namespace {

/// The seed's set-based symbolic cost replay, kept verbatim as the serial
/// reference (plan_contraction now costs orders with the bitset CostModel).
qtensor::PlanCost reference_estimate_cost(const qtensor::TensorNetwork& net,
                                          const std::vector<qtensor::VarId>& order) {
  std::vector<std::set<qtensor::VarId>> tensors;
  tensors.reserve(net.tensors.size());
  for (const qtensor::Tensor& t : net.tensors)
    tensors.emplace_back(t.labels().begin(), t.labels().end());

  qtensor::PlanCost cost;
  for (qtensor::VarId v : order) {
    std::set<qtensor::VarId> merged;
    std::size_t factors = 0;
    std::vector<std::set<qtensor::VarId>> rest;
    rest.reserve(tensors.size());
    for (auto& s : tensors) {
      if (s.count(v) > 0) {
        merged.insert(s.begin(), s.end());
        ++factors;
      } else {
        rest.push_back(std::move(s));
      }
    }
    if (factors == 0) continue;
    const double entries = std::pow(2.0, static_cast<double>(merged.size()));
    cost.flops += entries * static_cast<double>(factors);
    cost.peak_entries = std::max(cost.peak_entries, entries);
    cost.width = std::max(cost.width, merged.size());
    merged.erase(v);
    rest.push_back(std::move(merged));
    tensors = std::move(rest);
  }
  return cost;
}

/// The seed's plan_contraction: serial bake-off, each heuristic building its
/// own line graph from the network and every order costed by the set-based
/// replay (order_random_restart additionally replays contraction_width per
/// restart — also set-based).
qtensor::ContractionPlan serial_bakeoff(const qtensor::TensorNetwork& net,
                                        std::size_t restarts,
                                        std::uint64_t seed) {
  qtensor::ContractionPlan best;
  bool have_best = false;
  auto consider = [&](std::vector<qtensor::VarId> order,
                      const std::string& name) {
    const qtensor::PlanCost cost = reference_estimate_cost(net, order);
    const bool better =
        !have_best || cost.flops < best.cost.flops ||
        (cost.flops == best.cost.flops && cost.width < best.cost.width);
    if (better) {
      best.order = std::move(order);
      best.cost = cost;
      best.heuristic = name;
      have_best = true;
    }
  };
  consider(qtensor::order_greedy_degree(net), "greedy-degree");
  consider(qtensor::order_greedy_fill(net), "greedy-fill");
  Rng rng(seed);
  consider(qtensor::order_random_restart(net, restarts, rng),
           "random-restart");
  return best;
}

struct Workload {
  graph::Graph g;
  /// QNAS entangling-mixer ansatz: the planner stress workload (its mixer
  /// entangles along the qubit-index ring, so every edge cone is wide AND
  /// structurally distinct — planning cost dominates, no dedup help).
  circuit::Circuit qnas_ansatz;
  /// Baseline RX-mixer ansatz: the dedup workload. A qubit-local mixer makes
  /// each cone a function of the edge's local problem-graph neighbourhood
  /// only; on a random regular graph those collapse to a handful of shapes.
  circuit::Circuit rx_ansatz;
  std::vector<double> theta;
  std::vector<qtensor::TensorNetwork> networks;  ///< one per edge, qnas
};

Workload make_workload(std::size_t n, std::size_t degree, std::size_t p) {
  Rng rng(7);
  Workload w{graph::random_regular(n, degree, rng), {}, {}, {}, {}};
  w.qnas_ansatz = qaoa::build_qaoa_circuit(w.g, p, qaoa::MixerSpec::qnas());
  w.rx_ansatz = qaoa::build_qaoa_circuit(w.g, p, qaoa::MixerSpec::baseline());
  w.theta.assign(w.qnas_ansatz.num_params(), 0.37);
  for (const auto& e : w.g.edges()) {
    const auto cone = qtensor::lightcone_circuit(w.qnas_ansatz, {e.u, e.v});
    w.networks.push_back(
        qtensor::expectation_zz_network(cone, w.theta, e.u, e.v));
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 20));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 3));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 2));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 8));
  const auto restarts = static_cast<std::size_t>(cli.get_int("restarts", 8));
  const std::string out = cli.get("out", "BENCH_qtensor.json");
  const std::string cache_file =
      cli.get("plan-cache-file", "bench_plan_cache.json");

  const Workload w = make_workload(n, degree, p);
  std::printf("planning ablation: %zu-regular n=%zu p=%zu — %zu edge "
              "networks, %zu restarts\n\n",
              degree, n, p, w.networks.size(), restarts);

  // -- leg 1: serial bake-off vs parallel planner ---------------------------
  qtensor::PlannerOptions opt;
  opt.random_restarts = restarts;
  opt.workers = workers;

  double serial_ms = 1e300, parallel_ms = 1e300;
  std::size_t serial_width = 0, parallel_width = 0;
  double serial_flops = 0.0, parallel_flops = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    Timer ts;
    serial_width = 0;
    serial_flops = 0.0;
    for (const auto& net : w.networks) {
      const auto plan = serial_bakeoff(net, restarts, opt.seed);
      serial_width = std::max(serial_width, plan.cost.width);
      serial_flops += plan.cost.flops;
    }
    serial_ms = std::min(serial_ms, ts.millis());

    Timer tp;
    parallel_width = 0;
    parallel_flops = 0.0;
    for (const auto& net : w.networks) {
      const auto plan = qtensor::plan_contraction(net, opt);
      parallel_width = std::max(parallel_width, plan.cost.width);
      parallel_flops += plan.cost.flops;
    }
    parallel_ms = std::min(parallel_ms, tp.millis());
  }
  const double speedup = serial_ms / parallel_ms;
  std::printf("serial bake-off    %9.3f ms  (max width %zu)\n", serial_ms,
              serial_width);
  std::printf("parallel planner   %9.3f ms  (max width %zu, %zu workers)\n",
              parallel_ms, parallel_width, workers);
  std::printf("speedup            %9.2fx\n\n", speedup);

  // -- leg 2: shape-deduplicated compilation --------------------------------
  // On RX-mixer ansatze: a qubit-local mixer means symmetric edges share
  // lightcone shapes, so per-edge programs deduplicate to the count of
  // distinct local neighbourhoods — down to ONE on the fully symmetric ring.
  // (The QNAS ring mixer above makes every cone distinct — dedup honestly
  // reports |E| shapes there, which is why the planner still matters.)
  qaoa::EnergyOptions tn;
  tn.engine = qaoa::EngineKind::TensorNetwork;
  struct DedupRow {
    const char* label;
    graph::Graph g;
    std::size_t depth;
  };
  std::vector<DedupRow> dedup_rows;
  dedup_rows.push_back({"regular p=1", w.g, 1});
  dedup_rows.push_back({"regular p=2", w.g, p});
  dedup_rows.push_back({"ring p=2", graph::ring(n), p});
  json::Value dedup = json::Value::array();
  qaoa::EnergyPlanInfo info;  // last row reported in the summary line
  for (const DedupRow& row : dedup_rows) {
    const auto ansatz =
        qaoa::build_qaoa_circuit(row.g, row.depth, qaoa::MixerSpec::baseline());
    const qaoa::EnergyEvaluator ev(row.g, tn);
    info = ev.make_plan(ansatz)->info();
    std::printf("shape dedup        %-12s %3zu terms -> %3zu programs "
                "(%zu distinct shapes)\n",
                row.label, info.terms, info.compiled_programs,
                info.distinct_shapes);
    json::Value jr = json::Value::object();
    jr.set("workload", std::string(row.label));
    jr.set("terms", info.terms);
    jr.set("compiled_programs", info.compiled_programs);
    jr.set("distinct_shapes", info.distinct_shapes);
    dedup.push_back(std::move(jr));
  }
  std::printf("\n");

  // -- leg 3: plan-cache warm start -----------------------------------------
  const char* kVersion = "bench-plan";
  auto cold_cache = std::make_shared<qtensor::PlanCache>();
  qaoa::EnergyOptions tn_cached = tn;
  tn_cached.qtensor.plan_cache = cold_cache;
  qtensor::reset_planner_invocation_count();
  Timer tc;
  (void)qaoa::EnergyEvaluator(w.g, tn_cached).make_plan(w.qnas_ansatz);
  const double cold_ms = tc.millis();
  const std::size_t cold_invocations = qtensor::planner_invocation_count();

  search::save_plan_cache(cold_cache->snapshot(), cache_file, kVersion);
  auto warm_cache = std::make_shared<qtensor::PlanCache>();
  warm_cache->merge(search::load_plan_cache(cache_file, kVersion));
  tn_cached.qtensor.plan_cache = warm_cache;
  qtensor::reset_planner_invocation_count();
  Timer tw;
  (void)qaoa::EnergyEvaluator(w.g, tn_cached).make_plan(w.qnas_ansatz);
  const double warm_ms = tw.millis();
  const std::size_t warm_invocations = qtensor::planner_invocation_count();
  std::remove(cache_file.c_str());

  std::printf("cold compile       %9.3f ms  (%zu planner invocations)\n",
              cold_ms, cold_invocations);
  std::printf("warm compile       %9.3f ms  (%zu planner invocations — must "
              "be 0)\n",
              warm_ms, warm_invocations);
  if (warm_invocations != 0)
    std::printf("ERROR: warm compile re-planned!\n");

  json::Value section = json::Value::object();
  section.set("n", n);
  section.set("degree", degree);
  section.set("p", p);
  section.set("edges", w.g.num_edges());
  section.set("restarts", restarts);
  section.set("workers", workers);
  section.set("serial_bakeoff_ms", serial_ms);
  section.set("parallel_ms", parallel_ms);
  section.set("parallel_speedup", speedup);
  section.set("serial_width", serial_width);
  section.set("parallel_width", parallel_width);
  section.set("serial_flops", serial_flops);
  section.set("parallel_flops", parallel_flops);
  section.set("dedup", std::move(dedup));
  section.set("cold_compile_ms", cold_ms);
  section.set("cold_planner_invocations", cold_invocations);
  section.set("warm_compile_ms", warm_ms);
  section.set("warm_planner_invocations", warm_invocations);
  bench::update_bench_json(out, "planning", std::move(section));
  return warm_invocations == 0 ? 0 : 1;
}
