// Figure 6: the best-performing searched mixer circuit for max-cut QAOA.
//
// Protocol (paper §3.2): run the search on the Erdős–Rényi profiling
// workload, then evaluate the discovered mixer-layer combinations on a
// SEPARATE dataset of 10-node random 4-regular graphs; the best performer is
// drawn as the figure. The paper's winner is (rx, ry) — RX(2β)·RY(2β) with
// one shared β. Our output prints the full head of the ranking so the
// position of (rx, ry) is visible even when an RX-family variant ties or
// edges it (see EXPERIMENTS.md).
#include <algorithm>
#include <set>
#include <thread>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "parallel/task_pool.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto cfg = bench::BenchConfig::from_cli(cli);
  bench::banner("Figure 6", "best discovered mixer circuit", cfg);

  const std::size_t k_max = cfg.full ? 4 : 2;
  const std::size_t num_eval_graphs = cfg.graphs_or(/*quick=*/8, /*full=*/20);
  const std::size_t workers = std::thread::hardware_concurrency();

  // Stage 1 — search on the ER profiling workload.
  Rng rng(cfg.seed);
  const graph::Graph search_graph = graph::erdos_renyi_connected(10, 0.5, rng);
  search::SearchConfig scfg;
  scfg.p_max = 1;
  scfg.session.workers = workers;
  scfg.session.backend = cfg.backend();
  scfg.session.training_evals = 200;
  const auto report = search::SearchEngine(scfg).run_exhaustive(search_graph,
                                                                k_max);
  std::printf("stage 1: searched %zu candidates on %s in %.1fs\n",
              report.num_candidates, search_graph.to_string().c_str(),
              report.seconds);

  // Stage 2 — shortlist the strongest distinct mixers (plus the paper's
  // winner for reference) and score them on the 4-regular eval dataset.
  auto ranked = report.evaluated;
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.energy > b.energy; });
  std::vector<qaoa::MixerSpec> finalists;
  std::set<std::string> seen;
  for (const auto& c : ranked) {
    if (finalists.size() >= 6) break;
    if (seen.insert(c.mixer.to_string()).second) finalists.push_back(c.mixer);
  }
  if (seen.insert(qaoa::MixerSpec::qnas().to_string()).second)
    finalists.push_back(qaoa::MixerSpec::qnas());

  const auto eval_graphs = graph::regular_dataset(num_eval_graphs, 10, 4, rng);
  search::EvaluatorOptions eopt;
  eopt.energy.engine = cfg.engine;
  eopt.cobyla.max_evals = 200;

  parallel::TaskPool pool(workers);
  struct Scored {
    qaoa::MixerSpec mixer;
    double mean_sampled = 0.0;
    double mean_energy_ratio = 0.0;
  };
  std::vector<Scored> scored;
  for (const auto& mixer : finalists) {
    std::vector<std::tuple<std::size_t>> idx;
    for (std::size_t i = 0; i < eval_graphs.size(); ++i) idx.emplace_back(i);
    const auto results = pool.starmap_async(
        [&](std::size_t i) {
          const search::Evaluator ev(eval_graphs[i], eopt);
          return ev.evaluate(mixer, 1);
        },
        idx).get();
    std::vector<double> sampled, energy;
    for (const auto& r : results) {
      sampled.push_back(r.sampled_ratio);
      energy.push_back(r.ratio);
    }
    scored.push_back({mixer, mean(sampled), mean(energy)});
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.mean_sampled != b.mean_sampled) return a.mean_sampled > b.mean_sampled;
    return a.mean_energy_ratio > b.mean_energy_ratio;
  });

  std::printf("\nstage 2: finalists on %zu random 4-regular graphs (p=1):\n\n",
              eval_graphs.size());
  std::printf("%-24s %-14s %-14s\n", "mixer", "mean r (Eq.3)", "mean r_energy");
  for (const auto& s : scored)
    std::printf("%-24s %-14.4f %-14.4f\n", s.mixer.to_string().c_str(),
                s.mean_sampled, s.mean_energy_ratio);

  const auto& winner = scored.front().mixer;
  std::printf("\nbest mixer layer %s (paper Fig. 6 reports ('rx', 'ry')):\n\n%s\n",
              winner.to_string().c_str(),
              circuit::draw(qaoa::build_mixer_circuit(10, winner)).c_str());
  if (!(winner == qaoa::MixerSpec::qnas()))
    std::printf("note: ('rx', 'ry') placed in the leading group; see "
                "EXPERIMENTS.md for the deviation discussion.\n");
  return 0;
}
