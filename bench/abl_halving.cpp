// Ablation: fixed-budget sweep (Algorithm 1) vs successive halving.
//
// Both strategies rank the same k<=2 candidate cohort on the same graph;
// halving should reach a comparable winner while spending a fraction of the
// objective evaluations — the classic early-stopping win for NAS-style
// search.
#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "search/combinations.hpp"
#include "search/engine.hpp"
#include "search/halving.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 8));

  Rng rng(37);
  const auto g = graph::random_regular(10, 4, rng);
  const auto candidates = search::all_combinations(
      search::GateAlphabet::standard(), 2, search::CombinationMode::Product);
  std::printf("halving ablation: %zu candidates on %s, p=1\n\n",
              candidates.size(), g.to_string().c_str());

  // Full sweep: every candidate gets the paper's 200 evaluations.
  search::SearchConfig full_cfg;
  full_cfg.p_max = 1;
  full_cfg.session.workers = workers;
  full_cfg.session.backend = BackendChoice::Statevector;
  full_cfg.session.training_evals = 200;
  Timer t_full;
  const auto full = search::SearchEngine(full_cfg).run_exhaustive(g, 2);
  std::size_t full_evals = 0;
  for (const auto& c : full.evaluated) full_evals += c.evaluations;

  // Successive halving over the same cohort.
  search::HalvingConfig hcfg;
  hcfg.initial_budget = 25;
  hcfg.session.workers = workers;
  hcfg.session.backend = BackendChoice::Statevector;
  Timer t_halving;
  const auto halved = search::successive_halving(g, candidates, hcfg);

  std::printf("%-14s %-22s %-10s %-14s %-10s\n", "strategy", "winner", "<C>",
              "objective evals", "time (s)");
  std::printf("%-14s %-22s %-10.4f %-14zu %-10.2f\n", "full-sweep",
              full.best.mixer.to_string().c_str(), full.best.energy,
              full_evals, t_full.seconds());
  std::printf("%-14s %-22s %-10.4f %-14zu %-10.2f\n", "halving",
              halved.best.mixer.to_string().c_str(), halved.best.energy,
              halved.total_evaluations, t_halving.seconds());

  std::printf("\nhalving rounds:\n");
  for (const auto& r : halved.rounds)
    std::printf("  budget %-4zu: %zu -> %zu candidates\n", r.budget,
                r.candidates_in, r.candidates_out);
  std::printf("\nevaluation savings: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(halved.total_evaluations) /
                                 static_cast<double>(full_evals)));
  return 0;
}
