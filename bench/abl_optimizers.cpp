// Ablation: classical optimizer choice at a fixed 200-evaluation budget.
//
// The paper trains every candidate with COBYLA x200. This bench trains the
// same (graph, mixer, p) candidates with COBYLA, Nelder–Mead, SPSA, and a
// p=1-only grid search, and reports the mean trained energy ratio.
// Expected: COBYLA and Nelder–Mead are comparable and ahead of SPSA at this
// budget; the 2-D grid upper-bounds what p=1 training can reach.
#include <cstdio>
#include <memory>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "optim/cobyla.hpp"
#include "optim/grid_search.hpp"
#include "optim/nelder_mead.hpp"
#include "optim/spsa.hpp"
#include "parallel/task_pool.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/train.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto num_graphs = static_cast<std::size_t>(cli.get_int("graphs", 6));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 1));
  const std::size_t budget = 200;

  Rng rng(17);
  const auto graphs = graph::regular_dataset(num_graphs, 10, 4, rng);

  struct Entry {
    std::string name;
    std::unique_ptr<optim::Optimizer> optimizer;
  };
  std::vector<Entry> optimizers;
  {
    optim::CobylaConfig c;
    c.max_evals = budget;
    optimizers.push_back({"cobyla", std::make_unique<optim::Cobyla>(c)});
    optim::NelderMeadConfig nm;
    nm.max_evals = budget;
    optimizers.push_back(
        {"nelder-mead", std::make_unique<optim::NelderMead>(nm)});
    optim::SpsaConfig sp;
    sp.max_evals = budget;
    optimizers.push_back({"spsa", std::make_unique<optim::Spsa>(sp)});
    if (p == 1) {
      optim::GridSearchConfig gs;
      gs.points_per_axis = 14;  // 196 evals ≈ the same budget
      optimizers.push_back({"grid(p1)", std::make_unique<optim::GridSearch>(gs)});
    }
  }

  std::printf("optimizer ablation: %zu graphs, p=%zu, %zu-eval budget\n\n",
              num_graphs, p, budget);
  std::printf("%-12s %-10s %-10s %-10s\n", "optimizer", "mean r", "std r",
              "mean evals");

  parallel::TaskPool pool;
  for (const auto& entry : optimizers) {
    std::vector<std::tuple<std::size_t>> idx;
    for (std::size_t i = 0; i < graphs.size(); ++i) idx.emplace_back(i);
    struct Row { double ratio; double evals; };
    const auto rows = pool.starmap_async(
        [&](std::size_t i) {
          const auto& g = graphs[i];
          const auto ansatz =
              qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::qnas());
          const qaoa::EnergyEvaluator ev(g, {});
          const auto r = qaoa::train_qaoa(ansatz, ev, *entry.optimizer);
          const double cmax = graph::maxcut_exact(g).value;
          return Row{r.energy / cmax, static_cast<double>(r.evaluations)};
        },
        idx).get();
    std::vector<double> ratios, evals;
    for (const auto& r : rows) {
      ratios.push_back(r.ratio);
      evals.push_back(r.evals);
    }
    std::printf("%-12s %-10.4f %-10.4f %-10.0f\n", entry.name.c_str(),
                mean(ratios), stddev(ratios), mean(evals));
  }
  return 0;
}
