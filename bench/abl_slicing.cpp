// Ablation: index slicing (QTensor's step-dependent parallelization).
//
// Contracts one p=2 <ZZ> network directly and with 2^s slices for s=1..4,
// serial and parallel. Expected: slicing adds redundant work at small widths
// (each slice repeats the shallow contractions) but the slices parallelize
// perfectly, so wall-clock drops once workers are applied — exactly the
// trade QTensor exploits across GPUs.
#include <algorithm>
#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "qtensor/planner.hpp"
#include "qtensor/slicing.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 2));

  Rng rng(41);
  const auto g = graph::random_regular(10, 4, rng);
  const auto c = qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::qnas());
  const std::vector<double> theta(c.num_params(), 0.37);
  const auto net = qtensor::expectation_zz_network(c, theta, g.edges()[0].u,
                                                   g.edges()[0].v);
  const auto plan = qtensor::plan_contraction(net);
  const qtensor::SerialCpuBackend backend;

  Timer t0;
  qtensor::ContractionResult direct;
  for (std::size_t r = 0; r < reps; ++r)
    direct = qtensor::contract(net, plan.order, backend);
  const double direct_ms = t0.millis() / static_cast<double>(reps);
  std::printf("slicing ablation: p=%zu network, width %zu, direct %.2f ms "
              "(value %.6f)\n\n",
              p, direct.width, direct_ms, direct.value.real());

  std::printf("%-8s %-8s %-14s %-14s %-10s\n", "slices", "width",
              "serial (ms)", "8 workers (ms)", "max |err|");
  for (std::size_t s = 1; s <= 4; ++s) {
    const auto slice_vars = qtensor::choose_slice_vars(net, s);
    std::vector<qtensor::VarId> order;
    for (qtensor::VarId v : plan.order)
      if (std::find(slice_vars.begin(), slice_vars.end(), v) ==
          slice_vars.end())
        order.push_back(v);

    Timer t1;
    qtensor::ContractionResult serial;
    for (std::size_t r = 0; r < reps; ++r)
      serial = qtensor::contract_sliced(net, order, slice_vars, backend, 1);
    const double serial_ms = t1.millis() / static_cast<double>(reps);

    Timer t2;
    qtensor::ContractionResult par;
    for (std::size_t r = 0; r < reps; ++r)
      par = qtensor::contract_sliced(net, order, slice_vars, backend, 8);
    const double par_ms = t2.millis() / static_cast<double>(reps);

    std::printf("%-8zu %-8zu %-14.2f %-14.2f %-10.2e\n",
                std::size_t{1} << s, serial.width, serial_ms, par_ms,
                std::abs(serial.value - direct.value));
  }
  return 0;
}
