// Figure 7: approximation ratios of the four finalist mixers at p=1 on
// 10-node random 4-regular graphs: ('ry','p'), ('rx','h'), ('h','p'),
// ('rx','ry').
//
// Expected shape: all four reach high ratios, with ('rx','ry') best.
// r is the Eq. 3 sampled-best-cut ratio (the quantity the paper plots).
#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "parallel/task_pool.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto cfg = bench::BenchConfig::from_cli(cli);
  bench::banner("Figure 7", "finalist mixer approximation ratios at p=1", cfg);

  const std::size_t num_graphs = cfg.graphs_or(/*quick=*/10, /*full=*/20);
  Rng rng(cfg.seed);
  const auto graphs = graph::regular_dataset(num_graphs, 10, 4, rng);

  const std::vector<qaoa::MixerSpec> finalists = {
      qaoa::MixerSpec::parse("ry,p"), qaoa::MixerSpec::parse("rx,h"),
      qaoa::MixerSpec::parse("h,p"), qaoa::MixerSpec::parse("rx,ry")};

  search::EvaluatorOptions opt;
  opt.energy.engine = cfg.engine;
  opt.cobyla.max_evals = 200;

  parallel::TaskPool pool;
  std::vector<std::pair<std::string, double>> bars;
  std::vector<std::vector<double>> csv_rows;
  std::printf("graphs=%zu, p=1, 200 COBYLA steps each\n\n", num_graphs);
  std::printf("%-14s %-12s %-12s %-12s\n", "mixer", "mean r", "std r",
              "mean r_energy");
  for (std::size_t m = 0; m < finalists.size(); ++m) {
    std::vector<std::tuple<std::size_t>> idx;
    for (std::size_t i = 0; i < graphs.size(); ++i) idx.emplace_back(i);
    const auto results = pool.starmap_async(
        [&](std::size_t i) {
          const search::Evaluator ev(graphs[i], opt);
          return ev.evaluate(finalists[m], 1);
        },
        idx).get();
    std::vector<double> sampled, energy_ratio;
    for (const auto& r : results) {
      sampled.push_back(r.sampled_ratio);
      energy_ratio.push_back(r.ratio);
    }
    std::printf("%-14s %-12.4f %-12.4f %-12.4f\n",
                finalists[m].to_string().c_str(), mean(sampled),
                stddev(sampled), mean(energy_ratio));
    bars.emplace_back(finalists[m].to_string(), mean(sampled));
    csv_rows.push_back({static_cast<double>(m), mean(sampled),
                        stddev(sampled), mean(energy_ratio)});
  }

  std::printf("\n%s\n",
              ascii_barh("Fig 7: approx ratio, p=1 (4-regular graphs)", bars,
                         48, 0.0, 1.0)
                  .c_str());
  bench::maybe_csv(cfg.csv_path,
                   {"mixer_index", "mean_r", "std_r", "mean_r_energy"},
                   csv_rows);
  return 0;
}
