// Ablation: the qarchd wire front-end vs the in-process EvalService.
//
// One candidate cohort runs three ways against identical SessionConfigs:
//   1. COLD over the wire — an in-process QarchServer on an ephemeral
//      loopback port, one client submitting the whole cohort then polling
//      every ticket (the full request→schedule→evaluate→cache→respond
//      path);
//   2. WARM over the wire — the same cohort resubmitted; every response
//      must come from the result cache, so per-request latency IS the
//      protocol cost (connect + parse + dispatch + serialize);
//   3. DIRECT — the same submissions against a bare EvalService, giving
//      the in-process floor the wire numbers are compared to.
//
// The headline numbers are the per-evaluation wire overhead (warm wire
// mean minus direct warm mean; a warm wire evaluation is a submit + poll
// round-trip pair) and a bit-for-bit parity count between the wire and
// direct cold results — the daemon is allowed to add microseconds, never
// semantics.
//
// Results land in BENCH_server.json (section "server").
//
// Flags: --qubits N (8) --degree D (3) --p P (1) --kmax K (2) --evals E (40)
//        --workers W (4) --out PATH
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "search/eval_service.hpp"
#include "search/report_io.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("qubits", 8));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 3));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 1));
  const auto k_max = static_cast<std::size_t>(cli.get_int("kmax", 2));
  const auto evals = static_cast<std::size_t>(cli.get_int("evals", 40));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 4));
  const std::string out = cli.get("out", "BENCH_server.json");

  Rng rng(7);
  const auto g = graph::random_regular(n, degree, rng);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), k_max,
      search::CombinationMode::Product);

  SessionConfig session;
  session.backend = BackendChoice::Statevector;
  session.training_evals = evals;
  session.workers = workers;

  std::printf("server ablation: %s, %zu candidates (k<=%zu), p=%zu, "
              "%zu evals, %zu workers\n\n",
              g.to_string().c_str(), cohort.size(), k_max, p, evals, workers);
  json::Value section = json::Value::object();
  section.set("qubits", n);
  section.set("p", p);
  section.set("candidates", cohort.size());
  section.set("evals", evals);
  section.set("workers", workers);

  // -- the wire legs ---------------------------------------------------------
  server::ServerConfig config;
  config.session = session;
  config.tenants = {
      server::TenantSpec{.name = "bench", .api_key = "bench-key"}};
  server::QarchServer server(config);
  server.start();

  server::ClientOptions options;
  options.port = server.port();
  options.api_key = "bench-key";
  server::QarchClient client(options);

  std::vector<search::CandidateResult> wire_results;
  Timer cold_timer;
  {
    std::vector<std::string> tickets;
    tickets.reserve(cohort.size());
    for (const auto& m : cohort)
      tickets.push_back(client.submit(
          server::QarchClient::submit_body(g, m.to_string(), p)));
    for (const auto& ticket : tickets) {
      json::Value response = client.result(ticket, 30000.0);
      while (response.at("status").as_string() == "pending")
        response = client.result(ticket, 30000.0);
      wire_results.push_back(
          search::candidate_from_json(response.at("result")));
    }
  }
  const double cold_seconds = cold_timer.seconds();

  std::vector<double> warm_latencies;
  for (const auto& m : cohort) {
    Timer t;
    (void)client.evaluate(server::QarchClient::submit_body(g, m.to_string(), p),
                          1000.0);
    warm_latencies.push_back(t.seconds());
  }
  const auto wire_stats = server.service().stats();

  // -- the direct floor ------------------------------------------------------
  search::EvalService direct(session);
  std::vector<search::CandidateResult> direct_results;
  Timer direct_cold_timer;
  {
    std::vector<search::EvalTicket> tickets;
    tickets.reserve(cohort.size());
    for (const auto& m : cohort) tickets.push_back(direct.submit(g, m, p));
    for (const auto& t : tickets) direct_results.push_back(t.wait());
  }
  const double direct_cold_seconds = direct_cold_timer.seconds();

  std::vector<double> direct_warm_latencies;
  for (const auto& m : cohort) {
    Timer t;
    (void)direct.submit(g, m, p).wait();
    direct_warm_latencies.push_back(t.seconds());
  }

  // -- parity + the overhead headline ---------------------------------------
  std::size_t parity = 0;
  for (std::size_t i = 0; i < cohort.size(); ++i)
    if (wire_results[i].energy == direct_results[i].energy &&
        wire_results[i].theta == direct_results[i].theta &&
        wire_results[i].evaluations == direct_results[i].evaluations)
      ++parity;

  const auto mean = [](const std::vector<double>& xs) {
    double s = 0.0;
    for (double x : xs) s += x;
    return xs.empty() ? 0.0 : s / static_cast<double>(xs.size());
  };
  const auto p99 = [](std::vector<double> xs) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    return xs[std::min(xs.size() - 1, xs.size() * 99 / 100)];
  };
  const double warm_wire_mean = mean(warm_latencies);
  const double warm_direct_mean = mean(direct_warm_latencies);
  const double overhead_us = (warm_wire_mean - warm_direct_mean) * 1e6;

  // A warm wire evaluate() is TWO HTTP round trips (submit + poll); the
  // overhead below is per cached evaluation, not per single request.
  std::printf("cold cohort:   wire %.3f s, direct %.3f s\n"
              "warm eval:     wire mean %.1f us (p99 %.1f us), direct mean "
              "%.1f us\n"
              "wire overhead: %.1f us/eval (submit + poll)\n"
              "parity:        %zu/%zu bit-identical, %zu cache hits on the "
              "warm pass\n",
              cold_seconds, direct_cold_seconds, warm_wire_mean * 1e6,
              p99(warm_latencies) * 1e6, warm_direct_mean * 1e6, overhead_us,
              parity, cohort.size(),
              wire_stats.cache_hits);

  section.set("cold_wire_seconds", cold_seconds);
  section.set("cold_direct_seconds", direct_cold_seconds);
  section.set("warm_wire_mean_seconds", warm_wire_mean);
  section.set("warm_wire_p99_seconds", p99(warm_latencies));
  section.set("warm_direct_mean_seconds", warm_direct_mean);
  section.set("wire_overhead_us_per_eval", overhead_us);
  section.set("parity_bit_identical", parity);
  section.set("wire_cache_hits", wire_stats.cache_hits);
  section.set("wire_cache_misses", wire_stats.cache_misses);

  bench::update_bench_json(out, "server", std::move(section));

  // The bench doubles as a smoke check: non-parity is a bug, not a datum.
  if (parity != cohort.size()) {
    std::fprintf(stderr, "abl_server: wire/direct parity FAILED\n");
    return 1;
  }
  return 0;
}
