// Ablation: gate fusion — symbolic (circuit::optimize) and numeric
// (compiled-plan single-qubit fusion).
//
// Part 1 (the original study): searched mixer sequences routinely contain
// mergeable structure (rx·rx, h·h around a phase). Measures gate counts and
// energy-evaluation time for raw vs optimized candidate ansätze across the
// k<=3 candidate space.
//
// Part 2: toggles sim::SimProgram's single-qubit run fusion on/off on a
// larger statevector workload (diagonal kernels stay on in both variants) to
// isolate what fusing adjacent 2x2s into one cached matrix buys.
//
// Both parts append to the machine-readable BENCH_sim_kernels.json (section
// "fusion") shared with abl_diagonal_gates.
//
// Flags: --p (2) --reps (10) --qubits N (16) for part 2
//        --out PATH (BENCH_sim_kernels.json)
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/optimizer.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "qaoa/ansatz.hpp"
#include "sim/sim_program.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 2));
  const auto reps =
      std::max<std::size_t>(1, static_cast<std::size_t>(cli.get_int("reps", 10)));
  const auto big_n = static_cast<std::size_t>(cli.get_int("qubits", 16));
  const std::string out = cli.get("out", "BENCH_sim_kernels.json");

  // -- part 1: symbolic optimizer across the candidate space ---------------
  Rng rng(23);
  const auto g = graph::random_regular(10, 4, rng);
  const auto candidates = search::all_combinations(
      search::GateAlphabet::standard(), 3, search::CombinationMode::Product);

  qaoa::EnergyOptions sv;
  sv.engine = qaoa::EngineKind::Statevector;
  // Part 1 times the SYMBOLIC optimizer's incremental win on the production
  // engine, so the plan must not run circuit::optimize itself (presimplify
  // off). The plan's NUMERIC specializations (single-qubit fusion, diagonal
  // merging) stay on for both variants — they are part of the engine both
  // candidates run through, which also means the raw-vs-optimized delta here
  // is a lower bound on what the symbolic pass buys a weaker engine.
  qaoa::EnergyOptions sv_no_presimplify = sv;
  sv_no_presimplify.sv_plan.presimplify = false;
  const qaoa::EnergyEvaluator evaluator(g, sv_no_presimplify);
  std::size_t shrunk = 0;
  std::vector<double> raw_gates, opt_gates, raw_ms, opt_ms;
  for (const auto& mixer : candidates) {
    const auto ansatz = qaoa::build_qaoa_circuit(g, p, mixer);
    circuit::OptimizeStats stats;
    const auto optimized = circuit::optimize(ansatz, {}, &stats);
    if (optimized.num_gates() < ansatz.num_gates()) ++shrunk;
    raw_gates.push_back(static_cast<double>(ansatz.num_gates()));
    opt_gates.push_back(static_cast<double>(optimized.num_gates()));

    const std::vector<double> theta(ansatz.num_params(), 0.4);
    Timer t1;
    for (std::size_t r = 0; r < reps; ++r)
      (void)evaluator.energy(ansatz, theta);
    raw_ms.push_back(t1.millis() / static_cast<double>(reps));
    Timer t2;
    for (std::size_t r = 0; r < reps; ++r)
      (void)evaluator.energy(optimized, theta);
    opt_ms.push_back(t2.millis() / static_cast<double>(reps));
  }

  std::printf("fusion ablation: %zu candidates, p=%zu, statevector engine\n\n",
              candidates.size(), p);
  std::printf("candidates shrunk by optimization: %zu / %zu\n", shrunk,
              candidates.size());
  std::printf("mean gates: raw %.1f -> optimized %.1f\n", mean(raw_gates),
              mean(opt_gates));
  std::printf("mean <C> eval time: raw %.3f ms -> optimized %.3f ms "
              "(%.1f%% saved)\n",
              mean(raw_ms), mean(opt_ms),
              100.0 * (1.0 - mean(opt_ms) / mean(raw_ms)));

  // -- part 2: compiled-plan toggles (fusion x simd x blocking) ------------
  Rng rng2(29);
  const auto big = graph::random_regular(big_n, 4, rng2);
  const auto ansatz = qaoa::build_qaoa_circuit(big, p, qaoa::MixerSpec::qnas());
  const std::vector<double> theta(ansatz.num_params(), 0.37);

  const auto time_plan = [&](bool fuse, bool simd, bool blocking) {
    qaoa::EnergyOptions options = sv;
    options.sv_plan.fuse_single_qubit = fuse;
    options.sv_plan.simd = simd;
    options.sv_plan.cache_blocking = blocking;
    const qaoa::EnergyEvaluator ev(big, options);
    const auto plan = ev.make_plan(ansatz);
    plan->energy(theta);  // warm-up
    Timer t;
    for (std::size_t r = 0; r < reps; ++r) plan->energy(theta);
    return t.millis() / static_cast<double>(reps);
  };
  // Scalar/no-blocking isolates fusion; the simd and blocking columns show
  // how much of their win survives on top of it.
  const double unfused_ms = time_plan(false, false, false);
  const double fused_ms = time_plan(true, false, false);
  const double fused_simd_ms = time_plan(true, true, false);
  const double fused_blocked_ms = time_plan(true, false, true);
  const double fused_full_ms = time_plan(true, true, true);
  sim::PlanOptions fused_plan, unfused_plan;
  unfused_plan.fuse_single_qubit = false;
  const sim::SimProgram fused_prog(ansatz, fused_plan);
  const sim::SimProgram unfused_prog(ansatz, unfused_plan);
  std::printf("\nkernel fusion (%zu qubits, p=%zu): %.2f ms -> %.2f ms "
              "(%.2fx), ops %zu -> %zu\n",
              big_n, p, unfused_ms, fused_ms, unfused_ms / fused_ms,
              unfused_prog.stats().ops, fused_prog.stats().ops);
  std::printf("  fused + simd:          %.2f ms (%.2fx)\n", fused_simd_ms,
              fused_ms / fused_simd_ms);
  std::printf("  fused + blocking:      %.2f ms (%.2fx)\n", fused_blocked_ms,
              fused_ms / fused_blocked_ms);
  std::printf("  fused + simd+blocking: %.2f ms (%.2fx)\n", fused_full_ms,
              fused_ms / fused_full_ms);

  json::Value section = json::Value::object();
  section.set("candidates", candidates.size());
  section.set("p", p);
  section.set("shrunk_by_optimizer", shrunk);
  section.set("mean_gates_raw", mean(raw_gates));
  section.set("mean_gates_optimized", mean(opt_gates));
  section.set("mean_ms_raw", mean(raw_ms));
  section.set("mean_ms_optimized", mean(opt_ms));
  json::Value kernel = json::Value::object();
  kernel.set("qubits", big_n);
  kernel.set("unfused_ms", unfused_ms);
  kernel.set("fused_ms", fused_ms);
  kernel.set("fused_simd_ms", fused_simd_ms);
  kernel.set("fused_blocking_ms", fused_blocked_ms);
  kernel.set("fused_simd_blocking_ms", fused_full_ms);
  kernel.set("speedup_fusion", unfused_ms / fused_ms);
  kernel.set("speedup_simd", fused_ms / fused_simd_ms);
  kernel.set("speedup_blocking", fused_ms / fused_blocked_ms);
  kernel.set("speedup_simd_blocking", fused_ms / fused_full_ms);
  kernel.set("ops_unfused", unfused_prog.stats().ops);
  kernel.set("ops_fused", fused_prog.stats().ops);
  kernel.set("fused_gates", fused_prog.stats().fused_gates);
  section.set("kernel_fusion", std::move(kernel));
  bench::update_bench_json(out, "fusion", std::move(section));
  return 0;
}
