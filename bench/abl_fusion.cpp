// Ablation: circuit simplification before simulation.
//
// Searched mixer sequences routinely contain mergeable structure (e.g.
// rx·rx, or h·h around a phase). This bench measures gate counts and
// energy-evaluation time for raw vs optimized candidate ansätze across the
// k<=3 candidate space. Expected: a meaningful fraction of candidates
// shrink, and simulation time drops proportionally to the removed gates.
#include <cstdio>

#include "circuit/optimizer.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/energy.hpp"
#include "search/combinations.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 2));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 20));

  Rng rng(23);
  const auto g = graph::random_regular(10, 4, rng);
  const auto candidates = search::all_combinations(
      search::GateAlphabet::standard(), 3, search::CombinationMode::Product);

  const qaoa::EnergyEvaluator evaluator(g, {});
  std::size_t shrunk = 0;
  std::vector<double> raw_gates, opt_gates, raw_ms, opt_ms;
  for (const auto& mixer : candidates) {
    const auto ansatz = qaoa::build_qaoa_circuit(g, p, mixer);
    circuit::OptimizeStats stats;
    const auto optimized = circuit::optimize(ansatz, {}, &stats);
    if (optimized.num_gates() < ansatz.num_gates()) ++shrunk;
    raw_gates.push_back(static_cast<double>(ansatz.num_gates()));
    opt_gates.push_back(static_cast<double>(optimized.num_gates()));

    const std::vector<double> theta(ansatz.num_params(), 0.4);
    Timer t1;
    for (std::size_t r = 0; r < reps; ++r) evaluator.energy(ansatz, theta);
    raw_ms.push_back(t1.millis() / static_cast<double>(reps));
    Timer t2;
    for (std::size_t r = 0; r < reps; ++r) evaluator.energy(optimized, theta);
    opt_ms.push_back(t2.millis() / static_cast<double>(reps));
  }

  std::printf("fusion ablation: %zu candidates, p=%zu, statevector engine\n\n",
              candidates.size(), p);
  std::printf("candidates shrunk by optimization: %zu / %zu\n", shrunk,
              candidates.size());
  std::printf("mean gates: raw %.1f -> optimized %.1f\n", mean(raw_gates),
              mean(opt_gates));
  std::printf("mean <C> eval time: raw %.3f ms -> optimized %.3f ms "
              "(%.1f%% saved)\n",
              mean(raw_ms), mean(opt_ms),
              100.0 * (1.0 - mean(opt_ms) / mean(raw_ms)));
  return 0;
}
