// Ablation: the shared evaluation service vs the old per-driver loops.
//
// Eight sections, all on one graph + candidate cohort:
//   1. Parity + compile-once probe: two concurrent SearchEngine clients
//      share one EvalService; their best candidate must match the old-style
//      private loop (one Evaluator, serial sweep) bit for bit, while
//      sim::program_compile_count() proves each (candidate, graph) plan
//      compiled exactly ONCE service-wide (the acceptance criterion of the
//      service API).
//   2. Throughput vs client count: N client threads submitting the same
//      cohort; candidates/second and the result-cache hit rate as dedup
//      absorbs the duplicate load.
//   3. Queue accounting: mean queue-wait vs evaluation latency off the
//      service-side ticket timestamps.
//   4. backend=Auto pick counts on a small (statevector) and a large sparse
//      (tensor-network) instance.
//   5. Fairness: a greedy client floods the service while an interactive
//      client submits small batches; per-client makespans and the max/min
//      client-latency ratio, FIFO (one shared default queue) vs fair-share
//      (per-client registered queues).
//   6. Warm start: the same cohort through a cache_path-backed service
//      twice; the second service must serve ≥ 90% from the persisted cache
//      with zero plan recompiles.
//   7. Plan-cache tier: a retraining run (results deliberately not cached)
//      still reloads every contraction plan and never invokes the planner.
//   8. Preemption: interactive p50/p99 single-candidate latency under a
//      batch flood — FIFO vs fair-share vs fair-share + a 2 ms preemption
//      quantum (running batch evaluations park at a safe point instead of
//      holding a worker for their whole training run).
//
// Results land in BENCH_eval_service.json (section "eval_service").
//
// Flags: --qubits N (8) --degree D (3) --p P (1) --kmax K (2) --evals E (60)
//        --workers W (4) --max-clients C (4) --out PATH
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "qtensor/planner.hpp"
#include "search/eval_service.hpp"
#include "sim/sim_program.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("qubits", 8));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 3));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 1));
  const auto k_max = static_cast<std::size_t>(cli.get_int("kmax", 2));
  const auto evals = static_cast<std::size_t>(cli.get_int("evals", 60));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 4));
  const auto max_clients =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cli.get_int("max-clients", 4)));
  const std::string out = cli.get("out", "BENCH_eval_service.json");

  Rng rng(7);
  const auto g = graph::random_regular(n, degree, rng);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), k_max,
      search::CombinationMode::Product);

  SessionConfig session;
  session.backend = BackendChoice::Statevector;
  session.training_evals = evals;
  session.workers = workers;

  std::printf("eval-service ablation: %s, %zu candidates (k<=%zu), p=%zu, "
              "%zu evals, %zu workers\n\n",
              g.to_string().c_str(), cohort.size(), k_max, p, evals, workers);
  json::Value section = json::Value::object();
  section.set("qubits", n);
  section.set("p", p);
  section.set("candidates", cohort.size());
  section.set("evals", evals);
  section.set("workers", workers);

  // -- 1. parity + compile-once: old private loop vs two service clients ----
  const search::Evaluator old_style(
      g, session.evaluator_options(qaoa::EngineKind::Statevector));
  sim::reset_program_compile_count();
  Timer t_old;
  search::CandidateResult old_best;
  old_best.energy = -1.0;
  for (const auto& mixer : cohort) {
    auto r = old_style.evaluate(mixer, p);
    if (r.energy > old_best.energy) old_best = std::move(r);
  }
  const double old_seconds = t_old.seconds();
  const auto old_compiles = sim::program_compile_count();

  search::SearchConfig scfg;
  scfg.p_max = p;
  scfg.session = session;
  const search::SearchEngine engine(scfg);
  search::EvalService shared(session);
  sim::reset_program_compile_count();
  Timer t_shared;
  std::vector<search::SearchReport> reports(2);
  {
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 2; ++c)
      clients.emplace_back([&, c] {
        reports[c] = engine.run_exhaustive(shared, g, k_max);
      });
    for (auto& t : clients) t.join();
  }
  const double shared_seconds = t_shared.seconds();
  const auto shared_compiles = sim::program_compile_count();

  const bool parity = reports[0].best.mixer == old_best.mixer &&
                      reports[1].best.mixer == old_best.mixer &&
                      reports[0].best.energy == old_best.energy &&
                      reports[1].best.energy == old_best.energy;
  std::printf("old private loop:   best %-18s <C>=%.6f  %zu compiles  %.2fs\n",
              old_best.mixer.to_string().c_str(), old_best.energy,
              static_cast<std::size_t>(old_compiles), old_seconds);
  std::printf("2 service clients:  best %-18s <C>=%.6f  %zu compiles  %.2fs\n",
              reports[0].best.mixer.to_string().c_str(),
              reports[0].best.energy,
              static_cast<std::size_t>(shared_compiles), shared_seconds);
  std::printf("best-candidate parity: %s, duplicate compiles: %zu\n\n",
              parity ? "YES" : "NO",
              static_cast<std::size_t>(shared_compiles > old_compiles
                                           ? shared_compiles - old_compiles
                                           : 0));
  section.set("old_loop_seconds", old_seconds);
  section.set("old_loop_compiles", static_cast<std::size_t>(old_compiles));
  section.set("two_client_seconds", shared_seconds);
  section.set("two_client_compiles",
              static_cast<std::size_t>(shared_compiles));
  section.set("best_parity", parity);

  // -- 2. throughput vs client count ----------------------------------------
  std::printf("%-8s %-10s %-12s %-10s %-10s\n", "clients", "seconds",
              "cand/s", "hits", "misses");
  json::Value throughput = json::Value::array();
  for (std::size_t clients = 1; clients <= max_clients; clients *= 2) {
    search::EvalService service(session);
    Timer timer;
    std::vector<std::thread> pool;
    for (std::size_t c = 0; c < clients; ++c)
      pool.emplace_back([&] {
        (void)service.collect(service.submit_batch(g, cohort, p));
      });
    for (auto& t : pool) t.join();
    const double seconds = timer.seconds();
    const auto stats = service.stats();
    const double rate =
        static_cast<double>(clients * cohort.size()) / seconds;
    std::printf("%-8zu %-10.2f %-12.1f %-10zu %-10zu\n", clients, seconds,
                rate, stats.cache_hits, stats.cache_misses);
    json::Value row = json::Value::object();
    row.set("clients", clients);
    row.set("seconds", seconds);
    row.set("candidates_per_second", rate);
    row.set("cache_hits", stats.cache_hits);
    row.set("cache_misses", stats.cache_misses);
    row.set("hit_rate", static_cast<double>(stats.cache_hits) /
                            static_cast<double>(clients * cohort.size()));
    throughput.push_back(std::move(row));
  }
  section.set("throughput", std::move(throughput));

  // -- 3. queue accounting off the service-side timestamps ------------------
  {
    search::EvalService service(session);
    const auto tickets = service.submit_batch(g, cohort, p);
    const auto results = service.collect(tickets);
    double queue_sum = 0.0, eval_sum = 0.0;
    for (const auto& r : results) {
      queue_sum += r.queue_seconds;
      eval_sum += r.eval_seconds;
    }
    const double mean_queue = queue_sum / static_cast<double>(results.size());
    const double mean_eval = eval_sum / static_cast<double>(results.size());
    std::printf("\nper-candidate latency (1 client, %zu workers): "
                "%.1f ms queued, %.1f ms evaluating\n",
                workers, mean_queue * 1e3, mean_eval * 1e3);
    section.set("mean_queue_seconds", mean_queue);
    section.set("mean_eval_seconds", mean_eval);
  }

  // -- 4. backend=Auto pick counts ------------------------------------------
  {
    SessionConfig auto_session = session;
    auto_session.backend = BackendChoice::Auto;
    auto_session.training_evals = 15;
    search::EvalService service(auto_session);
    Rng big_rng(11);
    const auto big = graph::random_regular(
        std::max<std::size_t>(16, auto_session.auto_statevector_qubits + 2),
        3, big_rng);
    const auto small_tickets =
        service.submit_batch(g, {qaoa::MixerSpec::baseline(),
                                 qaoa::MixerSpec::qnas()}, 1);
    const auto big_tickets =
        service.submit_batch(big, {qaoa::MixerSpec::baseline(),
                                   qaoa::MixerSpec::qnas()}, 1);
    (void)service.collect(small_tickets);
    (void)service.collect(big_tickets);
    const auto stats = service.stats();
    std::printf("backend=auto picks: %zu statevector (n=%zu), "
                "%zu tensor-network (n=%zu)\n",
                stats.picked_statevector, g.num_vertices(),
                stats.picked_tensornetwork, big.num_vertices());
    json::Value auto_section = json::Value::object();
    auto_section.set("small_qubits", g.num_vertices());
    auto_section.set("large_qubits", big.num_vertices());
    auto_section.set("picked_statevector", stats.picked_statevector);
    auto_section.set("picked_tensornetwork", stats.picked_tensornetwork);
    section.set("auto_backend", std::move(auto_section));
  }

  // -- 5. fairness: greedy vs interactive client, FIFO vs fair-share --------
  {
    // The greedy client floods the whole cohort at 8x budget; the
    // interactive client submits 3-candidate batches at 1x and waits for
    // each. Two workers keep the pool saturated: under FIFO (both clients
    // in the default queue) every interactive batch parks behind the whole
    // remaining flood; with registered queues the scheduler alternates
    // budget-fairly.
    SessionConfig contended = session;
    contended.workers = 2;
    const auto run_leg = [&](bool fair, json::Value& leg) {
      search::EvalService service(contended);
      const std::size_t batches =
          std::max<std::size_t>(2, cohort.size() / 6);
      double greedy_span = 0.0, interactive_span = 0.0;
      double interactive_batch_mean = 0.0;
      std::thread greedy([&] {
        search::EvalClient me;
        search::JobOptions job;
        job.training_evals = 8 * evals;
        if (fair) {
          me = service.register_client("greedy");
          job.client = me.id();
        }
        const auto tickets = service.submit_batch(g, cohort, p, job);
        (void)service.collect(tickets);
        double first = tickets.front().submitted_at(), last = 0.0;
        for (const auto& t : tickets) last = std::max(last, t.finished_at());
        greedy_span = last - first;
      });
      std::thread interactive([&] {
        search::EvalClient me;
        // +1 eval: unique keys, so nothing dedups against the greedy flood.
        search::JobOptions job;
        job.training_evals = evals + 1;
        if (fair) {
          me = service.register_client("interactive");
          job.client = me.id();
        }
        double first = -1.0, last = 0.0, batch_sum = 0.0;
        for (std::size_t b = 0; b < batches; ++b) {
          std::vector<qaoa::MixerSpec> batch(
              cohort.begin() + static_cast<std::ptrdiff_t>(
                                   (3 * b) % (cohort.size() - 2)),
              cohort.begin() + static_cast<std::ptrdiff_t>(
                                   (3 * b) % (cohort.size() - 2) + 3));
          job.training_evals = evals + 1 + b;  // fresh work every batch
          const auto tickets = service.submit_batch(g, batch, p, job);
          (void)service.collect(tickets);
          if (first < 0.0) first = tickets.front().submitted_at();
          double batch_last = 0.0;
          for (const auto& t : tickets)
            batch_last = std::max(batch_last, t.finished_at());
          batch_sum += batch_last - tickets.front().submitted_at();
          last = std::max(last, batch_last);
        }
        interactive_span = last - first;
        interactive_batch_mean = batch_sum / static_cast<double>(batches);
      });
      greedy.join();
      interactive.join();
      // The client-latency metric is the interactive client's mean BATCH
      // turnaround — what a human at a prompt feels. (A max/min ratio of
      // total spans would reward FIFO for holding the light client hostage
      // until the flood drains: both "finish together" then.)
      leg.set("greedy_span_seconds", greedy_span);
      leg.set("interactive_span_seconds", interactive_span);
      leg.set("interactive_mean_batch_seconds", interactive_batch_mean);
      return interactive_batch_mean;
    };
    json::Value fifo = json::Value::object(), fair = json::Value::object();
    const double fifo_batch = run_leg(false, fifo);
    const double fair_batch = run_leg(true, fair);
    std::printf("\nfairness (greedy flood vs interactive batches):\n"
                "  fifo:       interactive batch %.1f ms\n"
                "  fair-share: interactive batch %.1f ms  (%.1fx better)\n",
                fifo_batch * 1e3, fair_batch * 1e3,
                fifo_batch / std::max(1e-9, fair_batch));
    json::Value fairness = json::Value::object();
    fairness.set("fifo", std::move(fifo));
    fairness.set("fair_share", std::move(fair));
    fairness.set("interactive_batch_speedup",
                 fifo_batch / std::max(1e-9, fair_batch));
    section.set("fairness", std::move(fairness));
  }

  // -- 6. persistent cache: cold run, then warm start from disk -------------
  {
    const std::string cache_file = out + ".cache";
    std::remove(cache_file.c_str());
    SessionConfig persisted = session;
    persisted.cache_path = cache_file;
    double cold_seconds = 0.0, warm_seconds = 0.0;
    {
      search::EvalService cold(persisted);
      Timer t;
      (void)cold.collect(cold.submit_batch(g, cohort, p));
      cold_seconds = t.seconds();
    }  // destructor persists the result cache
    sim::reset_program_compile_count();
    std::size_t warm_hits = 0, warm_loaded = 0;
    {
      search::EvalService warm(persisted);
      warm_loaded = warm.stats().cache_loaded;
      Timer t;
      (void)warm.collect(warm.submit_batch(g, cohort, p));
      warm_seconds = t.seconds();
      warm_hits = warm.stats().cache_hits;
    }
    const auto warm_compiles =
        static_cast<std::size_t>(sim::program_compile_count());
    const double hit_rate =
        static_cast<double>(warm_hits) / static_cast<double>(cohort.size());
    std::printf("\nwarm start via %s: cold %.2fs -> warm %.3fs, "
                "%zu/%zu cache hits (%.0f%%), %zu loaded, %zu recompiles\n",
                cache_file.c_str(), cold_seconds, warm_seconds, warm_hits,
                cohort.size(), hit_rate * 100.0, warm_loaded, warm_compiles);
    json::Value warm_section = json::Value::object();
    warm_section.set("cold_seconds", cold_seconds);
    warm_section.set("warm_seconds", warm_seconds);
    warm_section.set("warm_hit_rate", hit_rate);
    warm_section.set("cache_loaded", warm_loaded);
    warm_section.set("warm_plan_recompiles", warm_compiles);
    section.set("warm_start", std::move(warm_section));
    std::remove(cache_file.c_str());
  }

  // -- 7. plan-cache tier: a RETRAINING run still skips the planner ---------
  // Unlike the result cache above, the contraction-plan cache pays off even
  // when every candidate is new: with cache_path EMPTY the second service
  // retrains the whole cohort, yet compiles every tensor-network program
  // from persisted elimination orders — zero planner invocations.
  {
    const std::string plan_file = out + ".plans";
    std::remove(plan_file.c_str());
    SessionConfig planned = session;
    planned.backend = BackendChoice::TensorNetwork;
    planned.cache_path.clear();
    planned.plan_cache_path = plan_file;
    std::vector<qaoa::MixerSpec> tn_cohort(
        cohort.begin(), cohort.begin() + std::min<std::size_t>(4, cohort.size()));
    double cold_seconds = 0.0, warm_seconds = 0.0;
    qtensor::reset_planner_invocation_count();
    {
      search::EvalService cold(planned);
      Timer t;
      (void)cold.collect(cold.submit_batch(g, tn_cohort, p));
      cold_seconds = t.seconds();
    }  // destructor persists the plan cache
    const auto cold_plans =
        static_cast<std::size_t>(qtensor::planner_invocation_count());
    qtensor::reset_planner_invocation_count();
    std::size_t plans_loaded = 0;
    {
      search::EvalService warm(planned);
      plans_loaded = warm.stats().plans_loaded;
      Timer t;
      (void)warm.collect(warm.submit_batch(g, tn_cohort, p));
      warm_seconds = t.seconds();
    }
    const auto warm_plans =
        static_cast<std::size_t>(qtensor::planner_invocation_count());
    std::printf("\nplan-cache tier via %s (results NOT cached — both runs "
                "retrain):\n"
                "  cold %.2fs, %zu planner invocations -> warm %.2fs, "
                "%zu invocations (%zu plans loaded)\n",
                plan_file.c_str(), cold_seconds, cold_plans, warm_seconds,
                warm_plans, plans_loaded);
    if (warm_plans != 0)
      std::printf("ERROR: warm run invoked the planner!\n");
    json::Value plan_section = json::Value::object();
    plan_section.set("cold_seconds", cold_seconds);
    plan_section.set("warm_seconds", warm_seconds);
    plan_section.set("cold_planner_invocations", cold_plans);
    plan_section.set("warm_planner_invocations", warm_plans);
    plan_section.set("plans_loaded", plans_loaded);
    section.set("plan_cache", std::move(plan_section));
    std::remove(plan_file.c_str());
  }

  // -- 8. preemption: interactive tail latency under a batch flood ----------
  {
    // A batch client floods the whole cohort at 8x budget while an
    // interactive client submits singles and waits for each one. Fair-share
    // alone only reorders the QUEUES — an interactive single can still sit
    // behind a full 8x training run already holding both workers. With a
    // preemption quantum the running batch evaluation parks at its next
    // safe point, the interactive job borrows the worker, and the batch
    // job later resumes from its in-memory checkpoint.
    SessionConfig contended = session;
    contended.workers = 2;
    const std::size_t singles = 24;
    const auto run_leg = [&](bool fair, double quantum, json::Value& leg) {
      SessionConfig cfg = contended;
      cfg.preempt_quantum_seconds = quantum;
      search::EvalService service(cfg);
      std::vector<double> latencies;
      latencies.reserve(singles);
      std::thread batch([&] {
        search::EvalClient me;
        search::JobOptions job;
        // 200x budget: each flood job runs for many quanta, so without
        // preemption an interactive single waits for a WHOLE training run
        // to finish even under fair-share queue ordering.
        job.training_evals = 200 * evals;
        if (fair) {
          me = service.register_client("batch");
          job.client = me.id();
        }
        // Deeper circuits (p+1): the flood's training runs are long enough
        // to span many quanta even when COBYLA converges early.
        (void)service.collect(service.submit_batch(g, cohort, p + 1, job));
      });
      std::thread interactive([&] {
        search::EvalClient me;
        search::JobOptions job;
        if (fair) {
          me = service.register_client("interactive");
          job.client = me.id();
        }
        for (std::size_t i = 0; i < singles; ++i) {
          // Unique budget per single: nothing dedups against the flood.
          job.training_evals = evals + 1 + i;
          auto ticket = service.submit(g, cohort[i % cohort.size()], p, job);
          (void)ticket.wait();
          latencies.push_back(ticket.finished_at() - ticket.submitted_at());
        }
      });
      batch.join();
      interactive.join();
      std::sort(latencies.begin(), latencies.end());
      const double p50 = latencies[latencies.size() / 2];
      const double p99 = latencies[std::min(latencies.size() - 1,
                                            latencies.size() * 99 / 100)];
      const auto stats = service.stats();
      leg.set("interactive_p50_seconds", p50);
      leg.set("interactive_p99_seconds", p99);
      leg.set("parked", stats.parked);
      leg.set("resumed", stats.resumed);
      return p99;
    };
    json::Value fifo = json::Value::object();
    json::Value fair = json::Value::object();
    json::Value preempt = json::Value::object();
    const double fifo_p99 = run_leg(false, 0.0, fifo);
    const double fair_p99 = run_leg(true, 0.0, fair);
    const double preempt_p99 = run_leg(true, 0.002, preempt);
    std::printf("\npreemption (interactive p99 under a batch flood):\n"
                "  fifo:                 p99 %.1f ms\n"
                "  fair-share:           p99 %.1f ms\n"
                "  fair-share + preempt: p99 %.1f ms  (%.1fx better than "
                "fifo, %zu parks)\n",
                fifo_p99 * 1e3, fair_p99 * 1e3, preempt_p99 * 1e3,
                fifo_p99 / std::max(1e-9, preempt_p99),
                static_cast<std::size_t>(preempt.at("parked").as_number()));
    json::Value preemption = json::Value::object();
    preemption.set("fifo", std::move(fifo));
    preemption.set("fair_share", std::move(fair));
    preemption.set("fair_share_preempt", std::move(preempt));
    preemption.set("interactive_p99_speedup_vs_fifo",
                   fifo_p99 / std::max(1e-9, preempt_p99));
    section.set("preemption", std::move(preemption));
  }

  bench::update_bench_json(out, "eval_service", std::move(section));
  return 0;
}
