// Ablation: the shared evaluation service vs the old per-driver loops.
//
// Four sections, all on one graph + candidate cohort:
//   1. Parity + compile-once probe: two concurrent SearchEngine clients
//      share one EvalService; their best candidate must match the old-style
//      private loop (one Evaluator, serial sweep) bit for bit, while
//      sim::program_compile_count() proves each (candidate, graph) plan
//      compiled exactly ONCE service-wide (the acceptance criterion of the
//      service API).
//   2. Throughput vs client count: N client threads submitting the same
//      cohort; candidates/second and the result-cache hit rate as dedup
//      absorbs the duplicate load.
//   3. Queue accounting: mean queue-wait vs evaluation latency off the
//      service-side ticket timestamps.
//   4. backend=Auto pick counts on a small (statevector) and a large sparse
//      (tensor-network) instance.
//
// Results land in BENCH_eval_service.json (section "eval_service").
//
// Flags: --qubits N (8) --degree D (3) --p P (1) --kmax K (2) --evals E (60)
//        --workers W (4) --max-clients C (4) --out PATH
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "search/eval_service.hpp"
#include "sim/sim_program.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("qubits", 8));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 3));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 1));
  const auto k_max = static_cast<std::size_t>(cli.get_int("kmax", 2));
  const auto evals = static_cast<std::size_t>(cli.get_int("evals", 60));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 4));
  const auto max_clients =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cli.get_int("max-clients", 4)));
  const std::string out = cli.get("out", "BENCH_eval_service.json");

  Rng rng(7);
  const auto g = graph::random_regular(n, degree, rng);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), k_max,
      search::CombinationMode::Product);

  SessionConfig session;
  session.backend = BackendChoice::Statevector;
  session.training_evals = evals;
  session.workers = workers;

  std::printf("eval-service ablation: %s, %zu candidates (k<=%zu), p=%zu, "
              "%zu evals, %zu workers\n\n",
              g.to_string().c_str(), cohort.size(), k_max, p, evals, workers);
  json::Value section = json::Value::object();
  section.set("qubits", n);
  section.set("p", p);
  section.set("candidates", cohort.size());
  section.set("evals", evals);
  section.set("workers", workers);

  // -- 1. parity + compile-once: old private loop vs two service clients ----
  const search::Evaluator old_style(
      g, session.evaluator_options(qaoa::EngineKind::Statevector));
  sim::reset_program_compile_count();
  Timer t_old;
  search::CandidateResult old_best;
  old_best.energy = -1.0;
  for (const auto& mixer : cohort) {
    auto r = old_style.evaluate(mixer, p);
    if (r.energy > old_best.energy) old_best = std::move(r);
  }
  const double old_seconds = t_old.seconds();
  const auto old_compiles = sim::program_compile_count();

  search::SearchConfig scfg;
  scfg.p_max = p;
  scfg.session = session;
  const search::SearchEngine engine(scfg);
  search::EvalService shared(session);
  sim::reset_program_compile_count();
  Timer t_shared;
  std::vector<search::SearchReport> reports(2);
  {
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 2; ++c)
      clients.emplace_back([&, c] {
        reports[c] = engine.run_exhaustive(shared, g, k_max);
      });
    for (auto& t : clients) t.join();
  }
  const double shared_seconds = t_shared.seconds();
  const auto shared_compiles = sim::program_compile_count();

  const bool parity = reports[0].best.mixer == old_best.mixer &&
                      reports[1].best.mixer == old_best.mixer &&
                      reports[0].best.energy == old_best.energy &&
                      reports[1].best.energy == old_best.energy;
  std::printf("old private loop:   best %-18s <C>=%.6f  %zu compiles  %.2fs\n",
              old_best.mixer.to_string().c_str(), old_best.energy,
              static_cast<std::size_t>(old_compiles), old_seconds);
  std::printf("2 service clients:  best %-18s <C>=%.6f  %zu compiles  %.2fs\n",
              reports[0].best.mixer.to_string().c_str(),
              reports[0].best.energy,
              static_cast<std::size_t>(shared_compiles), shared_seconds);
  std::printf("best-candidate parity: %s, duplicate compiles: %zu\n\n",
              parity ? "YES" : "NO",
              static_cast<std::size_t>(shared_compiles > old_compiles
                                           ? shared_compiles - old_compiles
                                           : 0));
  section.set("old_loop_seconds", old_seconds);
  section.set("old_loop_compiles", static_cast<std::size_t>(old_compiles));
  section.set("two_client_seconds", shared_seconds);
  section.set("two_client_compiles",
              static_cast<std::size_t>(shared_compiles));
  section.set("best_parity", parity);

  // -- 2. throughput vs client count ----------------------------------------
  std::printf("%-8s %-10s %-12s %-10s %-10s\n", "clients", "seconds",
              "cand/s", "hits", "misses");
  json::Value throughput = json::Value::array();
  for (std::size_t clients = 1; clients <= max_clients; clients *= 2) {
    search::EvalService service(session);
    Timer timer;
    std::vector<std::thread> pool;
    for (std::size_t c = 0; c < clients; ++c)
      pool.emplace_back([&] {
        (void)service.collect(service.submit_batch(g, cohort, p));
      });
    for (auto& t : pool) t.join();
    const double seconds = timer.seconds();
    const auto stats = service.stats();
    const double rate =
        static_cast<double>(clients * cohort.size()) / seconds;
    std::printf("%-8zu %-10.2f %-12.1f %-10zu %-10zu\n", clients, seconds,
                rate, stats.cache_hits, stats.cache_misses);
    json::Value row = json::Value::object();
    row.set("clients", clients);
    row.set("seconds", seconds);
    row.set("candidates_per_second", rate);
    row.set("cache_hits", stats.cache_hits);
    row.set("cache_misses", stats.cache_misses);
    row.set("hit_rate", static_cast<double>(stats.cache_hits) /
                            static_cast<double>(clients * cohort.size()));
    throughput.push_back(std::move(row));
  }
  section.set("throughput", std::move(throughput));

  // -- 3. queue accounting off the service-side timestamps ------------------
  {
    search::EvalService service(session);
    const auto tickets = service.submit_batch(g, cohort, p);
    const auto results = service.collect(tickets);
    double queue_sum = 0.0, eval_sum = 0.0;
    for (const auto& r : results) {
      queue_sum += r.queue_seconds;
      eval_sum += r.eval_seconds;
    }
    const double mean_queue = queue_sum / static_cast<double>(results.size());
    const double mean_eval = eval_sum / static_cast<double>(results.size());
    std::printf("\nper-candidate latency (1 client, %zu workers): "
                "%.1f ms queued, %.1f ms evaluating\n",
                workers, mean_queue * 1e3, mean_eval * 1e3);
    section.set("mean_queue_seconds", mean_queue);
    section.set("mean_eval_seconds", mean_eval);
  }

  // -- 4. backend=Auto pick counts ------------------------------------------
  {
    SessionConfig auto_session = session;
    auto_session.backend = BackendChoice::Auto;
    auto_session.training_evals = 15;
    search::EvalService service(auto_session);
    Rng big_rng(11);
    const auto big = graph::random_regular(
        std::max<std::size_t>(16, auto_session.auto_statevector_qubits + 2),
        3, big_rng);
    const auto small_tickets =
        service.submit_batch(g, {qaoa::MixerSpec::baseline(),
                                 qaoa::MixerSpec::qnas()}, 1);
    const auto big_tickets =
        service.submit_batch(big, {qaoa::MixerSpec::baseline(),
                                   qaoa::MixerSpec::qnas()}, 1);
    (void)service.collect(small_tickets);
    (void)service.collect(big_tickets);
    const auto stats = service.stats();
    std::printf("backend=auto picks: %zu statevector (n=%zu), "
                "%zu tensor-network (n=%zu)\n",
                stats.picked_statevector, g.num_vertices(),
                stats.picked_tensornetwork, big.num_vertices());
    json::Value auto_section = json::Value::object();
    auto_section.set("small_qubits", g.num_vertices());
    auto_section.set("large_qubits", big.num_vertices());
    auto_section.set("picked_statevector", stats.picked_statevector);
    auto_section.set("picked_tensornetwork", stats.picked_tensornetwork);
    section.set("auto_backend", std::move(auto_section));
  }

  bench::update_bench_json(out, "eval_service", std::move(section));
  return 0;
}
