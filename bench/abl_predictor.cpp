// Ablation: predictor strategy — the paper's model-free search vs the
// REINFORCE neural controller (Fig. 1 / "upcoming version").
//
// Both predictors get the same candidate-evaluation budget; we track the
// best approximation ratio reached as a function of candidates evaluated.
// Expected: with a small alphabet both find strong mixers; the controller
// should concentrate later proposals on high-reward sequences (higher mean
// reward in the final quarter of its budget).
#include <cstdio>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "search/engine.hpp"
#include "search/rl_predictor.hpp"

using namespace qarch;

namespace {

void report(const char* name, const search::SearchReport& r) {
  // Best-so-far trajectory at quartile checkpoints.
  double best = 0.0;
  std::vector<double> traj;
  for (const auto& c : r.evaluated) {
    best = std::max(best, c.ratio);
    traj.push_back(best);
  }
  std::printf("%-10s best=%s  r=%.4f  | best-so-far at 25/50/75/100%%: ",
              name, r.best.mixer.to_string().c_str(), r.best.ratio);
  for (double q : {0.25, 0.5, 0.75, 1.0}) {
    const auto at = static_cast<std::size_t>(q * traj.size()) - 1;
    std::printf("%.4f ", traj[at]);
  }
  // Mean reward in the final quarter (exploitation indicator).
  std::vector<double> tail;
  for (std::size_t i = 3 * r.evaluated.size() / 4; i < r.evaluated.size(); ++i)
    tail.push_back(r.evaluated[i].ratio);
  std::printf(" | tail mean reward %.4f\n", mean(tail));
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto budget = static_cast<std::size_t>(cli.get_int("budget", 60));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 1));

  Rng rng(19);
  const auto g = graph::random_regular(10, 4, rng);
  std::printf("predictor ablation: %s, %zu-candidate budget, p=%zu\n\n",
              g.to_string().c_str(), budget, p);

  search::SearchConfig cfg;
  cfg.p_max = p;
  cfg.session.workers = 1;  // sequential so the controller learns online
  cfg.batch = 10;
  cfg.session.training_evals = 120;
  cfg.session.backend = BackendChoice::Statevector;
  const search::SearchEngine engine(cfg);

  search::RandomPredictor random(cfg.alphabet, 3, budget, /*seed=*/4);
  report("random", engine.run(g, random));

  search::ReinforceConfig rl;
  rl.k_max = 3;
  rl.budget = budget;
  rl.seed = 4;
  search::ReinforcePredictor controller(cfg.alphabet, rl);
  report("reinforce", engine.run(g, controller));
  return 0;
}
