// Ablation: plan reuse across the search pipeline.
//
// A candidate's entire training run — every COBYLA step of every multistart
// restart — should touch exactly ONE SimProgram compilation: qaoa::train_qaoa
// pulls the cached plan from qaoa::EnergyEvaluator::plan_for and every
// restart shares the same objective closure. This harness proves it end to
// end with the sim::program_compile_count() probe on a full
// search::Evaluator::evaluate call, then isolates the reuse win with a
// training-only comparison (identical optimizer budget, sampling excluded):
// one shared-plan multistart run vs independent compile-per-restart
// train_qaoa calls against a cache-disabled evaluator.
//
// A second section measures the one-shot path (landscape scans call
// EnergyEvaluator::energy(ansatz, theta) repeatedly): the ansatz→plan LRU
// cache turns N compilations into one.
//
// A third section repeats the probe on backend=qtensor: a full evaluate()
// (multistart restarts included) must build each edge's tensor network
// exactly ONCE — qtensor::network_build_count() is the qtensor analogue of
// the compile counter — and the compiled per-edge ContractionPrograms are
// timed against the legacy rebuild-per-theta plan and the replan-per-call
// facade.
//
// Results append to BENCH_sim_kernels.json (section "plan_reuse") and
// BENCH_qtensor.json (section "qtensor_plan_reuse").
//
// Flags: --qubits N (16) --degree D (4) --p P (2) --restarts R (4)
//        --evals E (100) --scan-calls S (24) --out PATH
//        --tn-qubits N (12) --tn-evals E (40) --tn-out PATH
#include <cstdio>

#include "bench_util.hpp"
#include "circuit/optimizer.hpp"
#include "common/timer.hpp"
#include "optim/multistart.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/train.hpp"
#include "qtensor/network.hpp"
#include "search/evaluator.hpp"
#include "sim/sim_program.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("qubits", 16));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 4));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 2));
  const auto restarts =
      std::max<std::size_t>(2, static_cast<std::size_t>(cli.get_int("restarts", 4)));
  const auto evals = static_cast<std::size_t>(cli.get_int("evals", 100));
  const auto scan_calls =
      static_cast<std::size_t>(cli.get_int("scan-calls", 24));
  const std::string out = cli.get("out", "BENCH_sim_kernels.json");

  Rng rng(7);
  const auto g = graph::random_regular(n, degree, rng);
  const qaoa::MixerSpec mixer = qaoa::MixerSpec::qnas();

  std::printf("plan-reuse ablation: %zu qubits, p=%zu, %zu restarts, "
              "%zu total evals\n\n",
              n, p, restarts, evals);

  // -- 1. end-to-end evaluate() probe: one compile for the whole candidate --
  search::EvaluatorOptions opt;
  opt.energy.engine = qaoa::EngineKind::Statevector;
  opt.cobyla.max_evals = evals;
  opt.restarts = restarts;
  const search::Evaluator evaluator(g, opt);

  sim::reset_program_compile_count();
  Timer t_eval;
  const auto result = evaluator.evaluate(mixer, p);
  const double evaluate_ms = t_eval.millis();
  const auto compiles_reuse = sim::program_compile_count();
  // Raw count, not averaged: ANY value above zero means a restart recompiled
  // and the reuse contract is broken.
  const auto recompiles =
      compiles_reuse > 0 ? compiles_reuse - 1 : compiles_reuse;

  std::printf("evaluate() with %zu restarts: %.1f ms, %llu compilation(s), "
              "%llu recompile(s), <C>=%.4f (%zu evals)\n",
              restarts, evaluate_ms,
              static_cast<unsigned long long>(compiles_reuse),
              static_cast<unsigned long long>(recompiles), result.energy,
              result.evaluations);

  // -- training-only comparison: same optimizer budget, sampling excluded, so
  // the delta is exactly the compilations the shared plan avoids ------------
  auto trained_ansatz = qaoa::build_qaoa_circuit(g, p, mixer);
  trained_ansatz = circuit::optimize(trained_ansatz);

  const qaoa::EnergyEvaluator cached_energy(g, opt.effective_energy());
  qaoa::EnergyOptions nocache_energy_opt = opt.effective_energy();
  nocache_energy_opt.plan_cache_capacity = 0;
  const qaoa::EnergyEvaluator uncached_energy(g, nocache_energy_opt);

  sim::reset_program_compile_count();
  Timer t_reuse;
  {
    const optim::MultiStart multistart(
        [&](std::size_t budget) -> std::unique_ptr<optim::Optimizer> {
          optim::CobylaConfig per_run = opt.cobyla;
          per_run.max_evals = budget;
          return std::make_unique<optim::Cobyla>(per_run);
        },
        {restarts, evals, 1.0, 31});
    (void)qaoa::train_qaoa(trained_ansatz, cached_energy, multistart,
                           opt.train);
  }
  const double reuse_ms = t_reuse.millis();
  const auto compiles_train = sim::program_compile_count();

  sim::reset_program_compile_count();
  Timer t_base;
  for (std::size_t r = 0; r < restarts; ++r) {
    optim::CobylaConfig per_run = opt.cobyla;
    per_run.max_evals = evals / restarts;
    (void)qaoa::train_qaoa(trained_ansatz, uncached_energy,
                           optim::Cobyla(per_run), opt.train);
  }
  const double base_ms = t_base.millis();
  const auto compiles_base = sim::program_compile_count();
  std::printf("multistart training (shared plan):   %.1f ms, %llu "
              "compilation(s)\n",
              reuse_ms, static_cast<unsigned long long>(compiles_train));
  std::printf("compile-per-restart training:        %.1f ms, %llu "
              "compilation(s)\n",
              base_ms, static_cast<unsigned long long>(compiles_base));
  std::printf("training-only plan-reuse win:        %.2fx\n\n",
              base_ms / reuse_ms);

  // -- 2. one-shot energy() calls (the landscape-scan pattern) --------------
  std::vector<double> theta(trained_ansatz.num_params(), 0.3);

  sim::reset_program_compile_count();
  Timer t_cached;
  for (std::size_t i = 0; i < scan_calls; ++i) {
    theta[0] = 0.01 * static_cast<double>(i);
    (void)cached_energy.energy(trained_ansatz, theta);
  }
  const double cached_ms = t_cached.millis();
  const auto compiles_cached = sim::program_compile_count();

  sim::reset_program_compile_count();
  Timer t_uncached;
  for (std::size_t i = 0; i < scan_calls; ++i) {
    theta[0] = 0.01 * static_cast<double>(i);
    (void)uncached_energy.energy(trained_ansatz, theta);
  }
  const double uncached_ms = t_uncached.millis();
  const auto compiles_uncached = sim::program_compile_count();

  std::printf("%zu one-shot energy() calls: cached %.1f ms (%llu compiles) "
              "vs uncached %.1f ms (%llu compiles) -> %.2fx\n",
              scan_calls, cached_ms,
              static_cast<unsigned long long>(compiles_cached), uncached_ms,
              static_cast<unsigned long long>(compiles_uncached),
              uncached_ms / cached_ms);

  json::Value section = json::Value::object();
  section.set("qubits", n);
  section.set("p", p);
  section.set("restarts", restarts);
  section.set("total_evals", evals);
  section.set("evaluate_ms", evaluate_ms);
  section.set("evaluate_compiles", static_cast<std::size_t>(compiles_reuse));
  section.set("recompiles_per_restart",
              static_cast<std::size_t>(recompiles));
  section.set("training_reuse_ms", reuse_ms);
  section.set("training_reuse_compiles",
              static_cast<std::size_t>(compiles_train));
  section.set("training_baseline_ms", base_ms);
  section.set("training_baseline_compiles",
              static_cast<std::size_t>(compiles_base));
  section.set("training_speedup", base_ms / reuse_ms);
  section.set("scan_calls", scan_calls);
  section.set("scan_cached_ms", cached_ms);
  section.set("scan_cached_compiles",
              static_cast<std::size_t>(compiles_cached));
  section.set("scan_uncached_ms", uncached_ms);
  section.set("scan_uncached_compiles",
              static_cast<std::size_t>(compiles_uncached));
  section.set("scan_speedup", uncached_ms / cached_ms);
  bench::update_bench_json(out, "plan_reuse", std::move(section));

  // -- 3. the same contract on backend=qtensor ------------------------------
  const auto tn_n = static_cast<std::size_t>(cli.get_int("tn-qubits", 12));
  const auto tn_evals =
      static_cast<std::size_t>(cli.get_int("tn-evals", 40));
  const std::string tn_out = cli.get("tn-out", "BENCH_qtensor.json");

  Rng tn_rng(7);
  const auto tn_g = graph::random_regular(tn_n, 3, tn_rng);
  std::printf("\nqtensor plan reuse: %zu qubits, 3-regular (%zu edges), "
              "p=%zu, %zu restarts\n",
              tn_n, tn_g.num_edges(), p, restarts);

  // End-to-end evaluate(): every COBYLA step of every restart replays the
  // per-edge compiled programs; the network is built once per edge, period.
  search::EvaluatorOptions tn_opt;
  tn_opt.energy.engine = qaoa::EngineKind::TensorNetwork;
  tn_opt.cobyla.max_evals = evals;
  tn_opt.restarts = restarts;
  const search::Evaluator tn_evaluator(tn_g, tn_opt);

  qtensor::reset_network_build_count();
  Timer t_tn_eval;
  const auto tn_result = tn_evaluator.evaluate(mixer, p);
  const double tn_evaluate_ms = t_tn_eval.millis();
  const auto tn_builds = qtensor::network_build_count();
  // One build per edge is the compile itself; anything beyond that is a
  // rebuild and breaks the reuse contract.
  const auto tn_rebuilds =
      tn_builds > tn_g.num_edges() ? tn_builds - tn_g.num_edges() : 0;
  std::printf("evaluate() with %zu restarts: %.1f ms, %llu network build(s) "
              "for %zu edges, %llu rebuild(s), <C>=%.4f\n",
              restarts, tn_evaluate_ms,
              static_cast<unsigned long long>(tn_builds), tn_g.num_edges(),
              static_cast<unsigned long long>(tn_rebuilds), tn_result.energy);

  // Energy benchmark: compiled replay vs the legacy rebuild-per-theta plan
  // (cached per-edge orders, networks rebuilt every call) vs the facade that
  // additionally re-plans the order per call.
  auto tn_ansatz = qaoa::build_qaoa_circuit(tn_g, p, mixer);
  tn_ansatz = circuit::optimize(tn_ansatz);
  std::vector<double> tn_theta(tn_ansatz.num_params(), 0.4);

  qaoa::EnergyOptions tn_compiled_opt = tn_opt.effective_energy();
  qaoa::EnergyOptions tn_rebuild_opt = tn_compiled_opt;
  tn_rebuild_opt.qtensor.compile_programs = false;
  const qaoa::EnergyEvaluator tn_compiled(tn_g, tn_compiled_opt);
  const qaoa::EnergyEvaluator tn_rebuild(tn_g, tn_rebuild_opt);
  const auto tn_compiled_plan = tn_compiled.plan_for(tn_ansatz);
  const auto tn_rebuild_plan = tn_rebuild.plan_for(tn_ansatz);
  (void)tn_compiled_plan->energy(tn_theta);  // warm scratch pools
  (void)tn_rebuild_plan->energy(tn_theta);

  qtensor::reset_network_build_count();
  Timer t_tn_c;
  for (std::size_t i = 0; i < tn_evals; ++i) {
    tn_theta[0] = 0.3 + 0.01 * static_cast<double>(i);
    (void)tn_compiled_plan->energy(tn_theta);
  }
  const double tn_compiled_ms = t_tn_c.millis();
  const auto tn_compiled_builds = qtensor::network_build_count();

  Timer t_tn_r;
  for (std::size_t i = 0; i < tn_evals; ++i) {
    tn_theta[0] = 0.3 + 0.01 * static_cast<double>(i);
    (void)tn_rebuild_plan->energy(tn_theta);
  }
  const double tn_rebuild_ms = t_tn_r.millis();

  const qtensor::QTensorSimulator tn_facade;
  const std::size_t facade_evals = std::max<std::size_t>(1, tn_evals / 4);
  Timer t_tn_f;
  for (std::size_t i = 0; i < facade_evals; ++i) {
    tn_theta[0] = 0.3 + 0.01 * static_cast<double>(i);
    for (const auto& e : tn_g.edges())
      (void)tn_facade.expectation_zz(tn_ansatz, tn_theta, e.u, e.v);
  }
  const double tn_facade_ms =
      t_tn_f.millis() * static_cast<double>(tn_evals) /
      static_cast<double>(facade_evals);

  std::printf("%zu energy() calls: compiled %.1f ms (%llu rebuilds) | "
              "rebuild-per-theta %.1f ms | replan-per-call %.1f ms\n",
              tn_evals, tn_compiled_ms,
              static_cast<unsigned long long>(tn_compiled_builds),
              tn_rebuild_ms, tn_facade_ms);
  std::printf("compiled speedup: %.2fx vs rebuild, %.2fx vs replan\n",
              tn_rebuild_ms / tn_compiled_ms, tn_facade_ms / tn_compiled_ms);

  json::Value tn_section = json::Value::object();
  tn_section.set("qubits", tn_n);
  tn_section.set("edges", tn_g.num_edges());
  tn_section.set("p", p);
  tn_section.set("restarts", restarts);
  tn_section.set("evaluate_ms", tn_evaluate_ms);
  tn_section.set("evaluate_network_builds",
                 static_cast<std::size_t>(tn_builds));
  tn_section.set("evaluate_network_rebuilds",
                 static_cast<std::size_t>(tn_rebuilds));
  tn_section.set("energy_calls", tn_evals);
  tn_section.set("compiled_ms", tn_compiled_ms);
  tn_section.set("compiled_network_rebuilds",
                 static_cast<std::size_t>(tn_compiled_builds));
  tn_section.set("rebuild_per_theta_ms", tn_rebuild_ms);
  tn_section.set("replan_per_call_ms", tn_facade_ms);
  tn_section.set("compiled_vs_rebuild_speedup",
                 tn_rebuild_ms / tn_compiled_ms);
  tn_section.set("compiled_vs_replan_speedup",
                 tn_facade_ms / tn_compiled_ms);
  bench::update_bench_json(tn_out, "qtensor_plan_reuse",
                           std::move(tn_section));
  return 0;
}
