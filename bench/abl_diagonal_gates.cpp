// Ablation: diagonal-gate rank reduction (google-benchmark).
//
// QAOA cost layers are built from RZZ — diagonal gates. QTensor's
// diagonal-gate optimization (Lykov & Alexeev 2021) stores them as
// rank-reduced tensors that create no new wire variables. This bench
// measures the <ZZ> contraction with the optimization on and off.
// Expected: "on" contracts smaller networks measurably faster, and the gap
// widens with depth as cost layers stack.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "qtensor/contraction.hpp"

using namespace qarch;

namespace {

void run_case(benchmark::State& state, bool diagonal_opt) {
  const auto p = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const auto g = graph::random_regular(10, 4, rng);
  const auto c = qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::qnas());
  const std::vector<double> theta(c.num_params(), 0.37);
  qtensor::QTensorOptions opt;
  opt.network.diagonal_optimization = diagonal_opt;
  const qtensor::QTensorSimulator sim(opt);
  const std::size_t u = g.edges()[0].u, v = g.edges()[0].v;
  for (auto _ : state)
    benchmark::DoNotOptimize(sim.expectation_zz(c, theta, u, v));
  const auto net = qtensor::expectation_zz_network(c, theta, u, v,
                                                   opt.network);
  state.counters["tensors"] = static_cast<double>(net.tensors.size());
  state.counters["vars"] = static_cast<double>(net.num_vars);
  state.counters["width"] = static_cast<double>(sim.zz_width(c, theta, u, v));
}

void BM_DiagonalOptOn(benchmark::State& state) { run_case(state, true); }
void BM_DiagonalOptOff(benchmark::State& state) { run_case(state, false); }

}  // namespace

BENCHMARK(BM_DiagonalOptOn)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DiagonalOptOff)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
