// Ablation: compiled statevector plans — diagonal kernels, SIMD, blocking.
//
// QAOA cost layers are built from RZZ — diagonal gates. The compiled
// sim::SimProgram streams them with one complex multiply per amplitude (the
// statevector analogue of QTensor's diagonal-gate rank reduction, Lykov &
// Alexeev 2021), fuses mixer runs into cached 2x2s, and reads all <Z_u Z_v>
// terms off the final state in one batched sweep. On top of that sit the
// AVX2/FMA streaming bodies (sim::simd) and the cache-blocked replay
// (PlanOptions::cache_blocking). This harness times a p=2 QAOA energy
// evaluation on a 20-qubit 4-regular graph through qaoa::EnergyEvaluator
// under six configurations:
//
//   generic          per-gate dense kernels + one state pass per edge
//                    (the pre-compilation seed path)
//   compiled-dense   compiled plan with diagonal kernels OFF (fusion and
//                    the batched sweep still on)
//   compiled-base    the full PR-1 compiled path: diagonal kernels + phase
//                    tables + fusion, scalar bodies, no blocking
//   +simd            compiled-base with the AVX2/FMA bodies
//   +blocking        compiled-base with cache-blocked replay (scalar)
//   +simd+blocking   the full path
//
// and verifies, via the sweep-count instrumentation, that the batched sweep
// turns |E| expectation passes into exactly one. Results append to the
// machine-readable BENCH_sim_kernels.json (section "diagonal_gates").
//
// Flags: --qubits N (20) --degree D (4) --p P (2) --reps R (5)
//        --workers W (1) --out PATH (BENCH_sim_kernels.json)
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "qaoa/ansatz.hpp"
#include "sim/simd.hpp"
#include "sim/sim_program.hpp"

using namespace qarch;

namespace {

struct VariantResult {
  std::string name;
  double mean_ms = 0.0;
  double energy = 0.0;
  std::uint64_t zz_sweeps_per_eval = 0;
};

VariantResult time_variant(const std::string& name, const graph::Graph& g,
                           const circuit::Circuit& ansatz,
                           const qaoa::EnergyOptions& options,
                           std::span<const double> theta, std::size_t reps) {
  const qaoa::EnergyEvaluator evaluator(g, options);
  const auto plan = evaluator.make_plan(ansatz);

  VariantResult r;
  r.name = name;
  sim::reset_expectation_sweep_count();
  r.energy = plan->energy(theta);  // warm-up + correctness cross-check
  r.zz_sweeps_per_eval = sim::expectation_sweep_count();

  Timer timer;
  for (std::size_t i = 0; i < reps; ++i) plan->energy(theta);
  r.mean_ms = timer.millis() / static_cast<double>(reps);
  std::printf("  %-16s %9.2f ms/eval   <C>=%.6f   zz sweeps/eval=%llu\n",
              r.name.c_str(), r.mean_ms, r.energy,
              static_cast<unsigned long long>(r.zz_sweeps_per_eval));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("qubits", 20));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 4));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 2));
  const auto reps =
      std::max<std::size_t>(1, static_cast<std::size_t>(cli.get_int("reps", 5)));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 1));
  const std::string out = cli.get("out", "BENCH_sim_kernels.json");

  Rng rng(7);
  const auto g = graph::random_regular(n, degree, rng);
  const auto ansatz = qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::qnas());
  const std::vector<double> theta(ansatz.num_params(), 0.37);

  std::printf("diagonal-gate ablation: %zu qubits, %zu edges, p=%zu, "
              "%zu gates, workers=%zu, avx2=%s\n\n",
              n, g.num_edges(), p, ansatz.num_gates(), workers,
              sim::simd::active() ? "yes" : "no (scalar)");

  qaoa::EnergyOptions generic;
  generic.engine = qaoa::EngineKind::Statevector;
  generic.inner_workers = workers;
  generic.sv_compile_plan = false;
  generic.sv_batch_expectations = false;
  generic.sv_plan.simd = false;

  qaoa::EnergyOptions compiled_dense = generic;
  compiled_dense.sv_compile_plan = true;
  compiled_dense.sv_batch_expectations = true;
  compiled_dense.sv_plan.diagonal_kernels = false;
  compiled_dense.sv_plan.cache_blocking = false;

  // The PR-1 compiled path: every compile-time specialization, scalar bodies.
  qaoa::EnergyOptions base = compiled_dense;
  base.sv_plan.diagonal_kernels = true;

  qaoa::EnergyOptions with_simd = base;
  with_simd.sv_plan.simd = true;

  qaoa::EnergyOptions with_blocking = base;
  with_blocking.sv_plan.cache_blocking = true;

  qaoa::EnergyOptions full = base;
  full.sv_plan.simd = true;
  full.sv_plan.cache_blocking = true;

  const auto r_generic =
      time_variant("generic", g, ansatz, generic, theta, reps);
  const auto r_dense =
      time_variant("compiled-dense", g, ansatz, compiled_dense, theta, reps);
  const auto r_base =
      time_variant("compiled-base", g, ansatz, base, theta, reps);
  const auto r_simd =
      time_variant("+simd", g, ansatz, with_simd, theta, reps);
  const auto r_blocked =
      time_variant("+blocking", g, ansatz, with_blocking, theta, reps);
  const auto r_full =
      time_variant("+simd+blocking", g, ansatz, full, theta, reps);

  const double speedup_total = r_generic.mean_ms / r_full.mean_ms;
  const double speedup_diag = r_dense.mean_ms / r_base.mean_ms;
  const double speedup_simd = r_base.mean_ms / r_simd.mean_ms;
  const double speedup_blocking = r_base.mean_ms / r_blocked.mean_ms;
  const double speedup_over_base = r_base.mean_ms / r_full.mean_ms;
  const double drift = std::abs(r_generic.energy - r_full.energy);
  std::printf("\nfull vs generic:                  %.2fx\n", speedup_total);
  std::printf("diagonal kernels (isolated):      %.2fx\n", speedup_diag);
  std::printf("simd (isolated):                  %.2fx\n", speedup_simd);
  std::printf("blocking (isolated):              %.2fx\n", speedup_blocking);
  std::printf("simd+blocking vs PR-1 compiled:   %.2fx\n", speedup_over_base);
  std::printf("zz sweeps/eval: %llu -> %llu (one pass per edge -> one total)\n",
              static_cast<unsigned long long>(r_generic.zz_sweeps_per_eval),
              static_cast<unsigned long long>(r_full.zz_sweeps_per_eval));
  std::printf("energy agreement: |Δ<C>| = %.2e\n", drift);

  const sim::SimProgram program(ansatz, full.sv_plan);
  std::printf("replay: %zu ops in %zu groups -> %zu memory passes/eval\n",
              program.stats().ops, program.stats().exec_groups,
              program.stats().memory_passes);

  json::Value section = json::Value::object();
  section.set("qubits", n);
  section.set("p", p);
  section.set("edges", g.num_edges());
  section.set("workers", workers);
  section.set("reps", reps);
  section.set("avx2_active", sim::simd::active());
  json::Value variants = json::Value::object();
  for (const auto& r :
       {r_generic, r_dense, r_base, r_simd, r_blocked, r_full}) {
    json::Value v = json::Value::object();
    v.set("mean_ms", r.mean_ms);
    v.set("energy", r.energy);
    v.set("zz_sweeps_per_eval", static_cast<std::size_t>(r.zz_sweeps_per_eval));
    variants.set(r.name, std::move(v));
  }
  section.set("variants", std::move(variants));
  section.set("speedup_full_vs_generic", speedup_total);
  section.set("speedup_diagonal_kernels", speedup_diag);
  section.set("speedup_simd", speedup_simd);
  section.set("speedup_blocking", speedup_blocking);
  section.set("speedup_simd_blocking_vs_pr1_compiled", speedup_over_base);
  section.set("energy_abs_drift", drift);
  json::Value stats = json::Value::object();
  stats.set("source_gates", program.stats().source_gates);
  stats.set("ops", program.stats().ops);
  stats.set("diag1_ops", program.stats().diag1_ops);
  stats.set("diag2_ops", program.stats().diag2_ops);
  stats.set("diag_table_ops", program.stats().diag_table_ops);
  stats.set("single_ops", program.stats().single_ops);
  stats.set("two_ops", program.stats().two_ops);
  stats.set("fused_gates", program.stats().fused_gates);
  stats.set("exec_groups", program.stats().exec_groups);
  stats.set("blocked_ops", program.stats().blocked_ops);
  stats.set("memory_passes", program.stats().memory_passes);
  section.set("program_stats", std::move(stats));
  bench::update_bench_json(out, "diagonal_gates", std::move(section));
  return 0;
}
