// Ablation: compiled statevector plans and diagonal-phase kernels.
//
// QAOA cost layers are built from RZZ — diagonal gates. The compiled
// sim::SimProgram streams them with one complex multiply per amplitude (the
// statevector analogue of QTensor's diagonal-gate rank reduction, Lykov &
// Alexeev 2021) and reads all <Z_u Z_v> terms off the final state in one
// batched sweep. This harness times a p=2 QAOA energy evaluation on a
// 20-qubit 4-regular graph through qaoa::EnergyEvaluator under three
// configurations:
//
//   generic          per-gate dense kernels + one state pass per edge
//                    (the pre-compilation seed path)
//   compiled-dense   compiled plan with diagonal kernels OFF (fusion and
//                    the batched sweep still on)
//   compiled         the full compiled path
//
// and verifies, via the sweep-count instrumentation, that the batched sweep
// turns |E| expectation passes into exactly one. Results append to the
// machine-readable BENCH_sim_kernels.json (section "diagonal_gates").
//
// Flags: --qubits N (20) --degree D (4) --p P (2) --reps R (5)
//        --workers W (1) --out PATH (BENCH_sim_kernels.json)
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "qaoa/ansatz.hpp"
#include "sim/sim_program.hpp"

using namespace qarch;

namespace {

struct VariantResult {
  std::string name;
  double mean_ms = 0.0;
  double energy = 0.0;
  std::uint64_t zz_sweeps_per_eval = 0;
};

VariantResult time_variant(const std::string& name, const graph::Graph& g,
                           const circuit::Circuit& ansatz,
                           const qaoa::EnergyOptions& options,
                           std::span<const double> theta, std::size_t reps) {
  const qaoa::EnergyEvaluator evaluator(g, options);
  const auto plan = evaluator.make_plan(ansatz);

  VariantResult r;
  r.name = name;
  sim::reset_expectation_sweep_count();
  r.energy = plan->energy(theta);  // warm-up + correctness cross-check
  r.zz_sweeps_per_eval = sim::expectation_sweep_count();

  Timer timer;
  for (std::size_t i = 0; i < reps; ++i) plan->energy(theta);
  r.mean_ms = timer.millis() / static_cast<double>(reps);
  std::printf("  %-16s %9.2f ms/eval   <C>=%.6f   zz sweeps/eval=%llu\n",
              r.name.c_str(), r.mean_ms, r.energy,
              static_cast<unsigned long long>(r.zz_sweeps_per_eval));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("qubits", 20));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 4));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 2));
  const auto reps =
      std::max<std::size_t>(1, static_cast<std::size_t>(cli.get_int("reps", 5)));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 1));
  const std::string out = cli.get("out", "BENCH_sim_kernels.json");

  Rng rng(7);
  const auto g = graph::random_regular(n, degree, rng);
  const auto ansatz = qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::qnas());
  const std::vector<double> theta(ansatz.num_params(), 0.37);

  std::printf("diagonal-gate ablation: %zu qubits, %zu edges, p=%zu, "
              "%zu gates, workers=%zu\n\n",
              n, g.num_edges(), p, ansatz.num_gates(), workers);

  qaoa::EnergyOptions generic;
  generic.engine = qaoa::EngineKind::Statevector;
  generic.inner_workers = workers;
  generic.sv_compile_plan = false;
  generic.sv_batch_expectations = false;

  qaoa::EnergyOptions compiled_dense = generic;
  compiled_dense.sv_compile_plan = true;
  compiled_dense.sv_batch_expectations = true;
  compiled_dense.sv_plan.diagonal_kernels = false;

  qaoa::EnergyOptions compiled = compiled_dense;
  compiled.sv_plan.diagonal_kernels = true;

  const auto r_generic =
      time_variant("generic", g, ansatz, generic, theta, reps);
  const auto r_dense =
      time_variant("compiled-dense", g, ansatz, compiled_dense, theta, reps);
  const auto r_compiled =
      time_variant("compiled", g, ansatz, compiled, theta, reps);

  const double speedup_total = r_generic.mean_ms / r_compiled.mean_ms;
  const double speedup_diag = r_dense.mean_ms / r_compiled.mean_ms;
  const double drift = std::abs(r_generic.energy - r_compiled.energy);
  std::printf("\ncompiled vs generic:        %.2fx\n", speedup_total);
  std::printf("diagonal kernels (isolated): %.2fx\n", speedup_diag);
  std::printf("zz sweeps/eval: %llu -> %llu (one pass per edge -> one total)\n",
              static_cast<unsigned long long>(r_generic.zz_sweeps_per_eval),
              static_cast<unsigned long long>(r_compiled.zz_sweeps_per_eval));
  std::printf("energy agreement: |Δ<C>| = %.2e\n", drift);

  const sim::SimProgram program(ansatz);
  json::Value section = json::Value::object();
  section.set("qubits", n);
  section.set("p", p);
  section.set("edges", g.num_edges());
  section.set("workers", workers);
  section.set("reps", reps);
  json::Value variants = json::Value::object();
  for (const auto& r : {r_generic, r_dense, r_compiled}) {
    json::Value v = json::Value::object();
    v.set("mean_ms", r.mean_ms);
    v.set("energy", r.energy);
    v.set("zz_sweeps_per_eval", static_cast<std::size_t>(r.zz_sweeps_per_eval));
    variants.set(r.name, std::move(v));
  }
  section.set("variants", std::move(variants));
  section.set("speedup_compiled_vs_generic", speedup_total);
  section.set("speedup_diagonal_kernels", speedup_diag);
  section.set("energy_abs_drift", drift);
  json::Value stats = json::Value::object();
  stats.set("source_gates", program.stats().source_gates);
  stats.set("ops", program.stats().ops);
  stats.set("diag1_ops", program.stats().diag1_ops);
  stats.set("diag2_ops", program.stats().diag2_ops);
  stats.set("diag_table_ops", program.stats().diag_table_ops);
  stats.set("single_ops", program.stats().single_ops);
  stats.set("two_ops", program.stats().two_ops);
  stats.set("fused_gates", program.stats().fused_gates);
  section.set("program_stats", std::move(stats));
  bench::update_bench_json(out, "diagonal_gates", std::move(section));
  return 0;
}
