// Ablation: two-level parallelism split (Fig. 2's scheme on one node).
//
// With a fixed core budget C, split it as outer (concurrent candidates) x
// inner (threads per candidate's per-edge TN contractions) and time the same
// candidate batch under every split. Expected: outer-heavy splits win when
// candidates outnumber cores (the paper's starmap regime); inner parallelism
// only pays once outer width saturates the candidate count.
#include <cstdio>
#include <thread>
#include <tuple>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "parallel/two_level.hpp"
#include "search/combinations.hpp"
#include "search/evaluator.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto budget = static_cast<std::size_t>(cli.get_int(
      "budget", std::min<std::size_t>(24, std::thread::hardware_concurrency())));
  const auto num_candidates =
      static_cast<std::size_t>(cli.get_int("candidates", 16));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 1));

  Rng rng(13);
  const auto g = graph::random_regular(10, 4, rng);
  const auto candidates = search::all_combinations(
      search::GateAlphabet::standard(), 2, search::CombinationMode::Product);

  std::printf("two-level split ablation: %zu candidates, core budget %zu, "
              "p=%zu, TN engine\n\n",
              num_candidates, budget, p);
  std::printf("%-14s %-12s\n", "outer x inner", "time (s)");

  for (std::size_t outer : {budget, budget / 2, budget / 4, budget / 8,
                            std::size_t{1}}) {
    if (outer == 0) continue;
    const std::size_t inner = budget / outer;
    if (inner == 0) continue;

    search::EvaluatorOptions opt;
    opt.energy.engine = qaoa::EngineKind::TensorNetwork;
    opt.energy.inner_workers = inner;
    opt.cobyla.max_evals = 100;
    const search::Evaluator evaluator(g, opt);

    parallel::TwoLevelExecutor exec(outer, inner);
    Timer t;
    const std::function<double(std::size_t, std::size_t)> job =
        [&](std::size_t i, std::size_t) {
          return evaluator.evaluate(candidates[i % candidates.size()], p)
              .energy;
        };
    exec.run<double>(num_candidates, job);
    std::printf("%3zu x %-8zu %-12.3f\n", outer, inner, t.seconds());
  }
  return 0;
}
