// Figure 8: approximation ratio of the baseline RX mixer vs the searched
// ('rx','ry') "qnas" mixer on Erdős–Rényi graphs, averaged over p = 1, 2, 3.
//
// Expected shape: both distributions sit high (paper x-axis spans
// 0.986..1.000) with qnas's mean at or above the baseline's.
#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "search/eval_service.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto cfg = bench::BenchConfig::from_cli(cli);
  bench::banner("Figure 8", "baseline vs qnas mixer on ER graphs", cfg);

  const std::size_t num_graphs = cfg.graphs_or(/*quick=*/10, /*full=*/20);
  const std::size_t p_max = 3;
  Rng rng(cfg.seed);
  const auto graphs = graph::er_dataset(num_graphs, 10, 0.3, 0.7, rng);

  SessionConfig session;
  session.backend = cfg.backend();
  session.training_evals = 200;
  session.workers = 0;  // all cores
  session.evaluator_cache = num_graphs;  // one shared evaluator per graph
  search::EvalService service(session);

  const std::vector<std::pair<std::string, qaoa::MixerSpec>> mixers = {
      {"baseline", qaoa::MixerSpec::baseline()},
      {"qnas", qaoa::MixerSpec::qnas()}};

  std::vector<std::pair<std::string, double>> bars;
  std::vector<std::vector<double>> csv_rows;
  std::printf("graphs=%zu, r averaged over p=1..%zu per graph\n\n", num_graphs,
              p_max);
  std::printf("%-10s %-10s %-10s %-10s %-10s\n", "mixer", "mean r", "std r",
              "min r", "max r");
  for (const auto& [name, mixer] : mixers) {
    // One submission per (graph, p); ratios averaged over p within a graph.
    std::vector<std::tuple<std::size_t, std::size_t>> jobs;
    std::vector<search::EvalTicket> tickets;
    for (std::size_t i = 0; i < graphs.size(); ++i)
      for (std::size_t p = 1; p <= p_max; ++p) {
        jobs.emplace_back(i, p);
        tickets.push_back(service.submit(graphs[i], mixer, p));
      }
    const auto results = service.collect(tickets);
    std::vector<double> per_graph(graphs.size(), 0.0);
    for (std::size_t j = 0; j < jobs.size(); ++j)
      per_graph[std::get<0>(jobs[j])] +=
          results[j].sampled_ratio / static_cast<double>(p_max);

    std::printf("%-10s %-10.4f %-10.4f %-10.4f %-10.4f\n", name.c_str(),
                mean(per_graph), stddev(per_graph), min_value(per_graph),
                max_value(per_graph));
    bars.emplace_back(name, mean(per_graph));
    csv_rows.push_back({mean(per_graph), stddev(per_graph),
                        min_value(per_graph), max_value(per_graph)});
  }

  std::printf("\n%s\n",
              ascii_barh("Fig 8: mean r on ER graphs (avg over p=1..3)", bars,
                         48, 0.9, 1.0)
                  .c_str());
  std::printf("(bar range 0.90..1.00 to match the paper's zoomed axis)\n");
  bench::maybe_csv(cfg.csv_path, {"mean_r", "std_r", "min_r", "max_r"},
                   csv_rows);
  return 0;
}
