// Ablation: simulator engine (statevector vs tensor network) and the
// parallel "device" contraction backend.
//
// Times one full QAOA energy evaluation (all |E| <ZZ> terms) per engine
// as the qubit count grows. Expected: statevector wins at small n but its
// cost doubles per qubit; the TN-lightcone path depends on circuit
// structure rather than n, so the crossover moves in its favour as n grows
// (at p=1 the lightcone is constant-size for regular graphs). The parallel
// backend/inner-worker rows show the intra-candidate parallelism seam.
#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/energy.hpp"

using namespace qarch;

namespace {

double time_energy(const graph::Graph& g, const circuit::Circuit& c,
                   const qaoa::EnergyOptions& opt, std::size_t reps) {
  const qaoa::EnergyEvaluator ev(g, opt);
  const auto plan = ev.make_plan(c);
  const std::vector<double> theta(c.num_params(), 0.4);
  plan->energy(theta);  // warm-up / order-cache build
  Timer t;
  for (std::size_t i = 0; i < reps; ++i) plan->energy(theta);
  return t.seconds() / static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 1));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 10));

  std::printf("engine ablation: one full <C> evaluation, p=%zu, 3-regular\n\n",
              p);
  std::printf("%-4s %-16s %-16s %-20s\n", "n", "statevector (ms)",
              "tn serial (ms)", "tn 8 workers (ms)");
  for (std::size_t n : {8, 10, 12, 14, 16}) {
    Rng rng(5);
    const auto g = graph::random_regular(n, 3, rng);
    const auto c = qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::qnas());

    qaoa::EnergyOptions sv;
    sv.engine = qaoa::EngineKind::Statevector;
    qaoa::EnergyOptions tn;
    tn.engine = qaoa::EngineKind::TensorNetwork;
    qaoa::EnergyOptions tn_par = tn;
    tn_par.inner_workers = 8;
    tn_par.qtensor.backend = "parallel:4";

    std::printf("%-4zu %-16.3f %-16.3f %-20.3f\n", n,
                time_energy(g, c, sv, reps) * 1e3,
                time_energy(g, c, tn, reps) * 1e3,
                time_energy(g, c, tn_par, reps) * 1e3);
  }
  std::printf(
      "\nNote: at p=1 the TN lightcone is constant-size on regular graphs,\n"
      "so its cost stays flat while the statevector doubles per qubit.\n");
  return 0;
}
