// Ablation: simulator engine (statevector vs tensor network) and the
// parallel "device" contraction backend.
//
// Times one full QAOA energy evaluation (all |E| <ZZ> terms) per engine
// as the qubit count grows, and reports each engine's compile/build counts
// (sim::program_compile_count for the statevector plans,
// qtensor::network_build_count for the tensor networks) so plan reuse is
// visible: compiled engines pay their builds once at plan time and ZERO per
// theta. Expected timings: statevector wins at small n but its cost doubles
// per qubit; the TN-lightcone path depends on circuit structure rather than
// n, so the crossover moves in its favour as n grows (at p=1 the lightcone
// is constant-size for regular graphs). The parallel backend/inner-worker
// rows show the intra-candidate parallelism seam.
//
// Emits BENCH_qtensor.json section "sim_backend".
//
// Flags: --p P (1) --reps R (10) --out PATH (BENCH_qtensor.json)
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/energy.hpp"
#include "qtensor/network.hpp"
#include "sim/sim_program.hpp"

using namespace qarch;

namespace {

struct EngineRun {
  double ms = 0.0;              ///< per-evaluation time, steady state
  std::size_t plan_builds = 0;  ///< compiles/builds during make_plan
  std::size_t replay_builds = 0;  ///< builds during the timed replays (the
                                  ///< reuse check: must be 0 when compiled)
};

std::size_t engine_builds(const qaoa::EnergyOptions& opt) {
  return opt.engine == qaoa::EngineKind::Statevector
             ? static_cast<std::size_t>(sim::program_compile_count())
             : static_cast<std::size_t>(qtensor::network_build_count());
}

EngineRun time_energy(const graph::Graph& g, const circuit::Circuit& c,
                      const qaoa::EnergyOptions& opt, std::size_t reps) {
  const qaoa::EnergyEvaluator ev(g, opt);
  sim::reset_program_compile_count();
  qtensor::reset_network_build_count();
  const auto plan = ev.make_plan(c);
  EngineRun run;
  run.plan_builds = engine_builds(opt);

  const std::vector<double> theta(c.num_params(), 0.4);
  plan->energy(theta);  // warm-up: scratch pools, legacy order caches
  sim::reset_program_compile_count();
  qtensor::reset_network_build_count();
  Timer t;
  for (std::size_t i = 0; i < reps; ++i) plan->energy(theta);
  run.ms = t.millis() / static_cast<double>(reps);
  run.replay_builds = engine_builds(opt);
  return run;
}

void add_run(json::Value& row, const char* key, const EngineRun& run) {
  json::Value v = json::Value::object();
  v.set("ms", run.ms);
  v.set("plan_builds", run.plan_builds);
  v.set("replay_builds", run.replay_builds);
  row.set(key, std::move(v));
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 1));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 10));
  const std::string out = cli.get("out", "BENCH_qtensor.json");

  std::printf("engine ablation: one full <C> evaluation, p=%zu, 3-regular\n",
              p);
  std::printf("build counts are compile-time/replay-time: compiled engines "
              "must replay with 0\n\n");
  std::printf("%-4s %-22s %-22s %-22s %-22s\n", "n",
              "statevector (ms|b)", "tn compiled (ms|b)",
              "tn rebuild (ms|b)", "tn par 8w (ms|b)");

  json::Value rows = json::Value::array();
  for (std::size_t n : {8, 10, 12, 14, 16}) {
    Rng rng(5);
    const auto g = graph::random_regular(n, 3, rng);
    const auto c = qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::qnas());

    qaoa::EnergyOptions sv;
    sv.engine = qaoa::EngineKind::Statevector;
    qaoa::EnergyOptions tn;
    tn.engine = qaoa::EngineKind::TensorNetwork;
    qaoa::EnergyOptions tn_rebuild = tn;
    tn_rebuild.qtensor.compile_programs = false;
    qaoa::EnergyOptions tn_par = tn;
    tn_par.inner_workers = 8;
    tn_par.qtensor.backend = "parallel:4";

    const EngineRun r_sv = time_energy(g, c, sv, reps);
    const EngineRun r_tn = time_energy(g, c, tn, reps);
    const EngineRun r_rb = time_energy(g, c, tn_rebuild, reps);
    const EngineRun r_par = time_energy(g, c, tn_par, reps);

    auto cell = [](const EngineRun& r) {
      char s[64];
      std::snprintf(s, sizeof(s), "%8.3f | %zu/%zu", r.ms, r.plan_builds,
                    r.replay_builds);
      return std::string(s);
    };
    std::printf("%-4zu %-22s %-22s %-22s %-22s\n", n, cell(r_sv).c_str(),
                cell(r_tn).c_str(), cell(r_rb).c_str(), cell(r_par).c_str());

    json::Value row = json::Value::object();
    row.set("n", n);
    row.set("edges", g.num_edges());
    add_run(row, "statevector", r_sv);
    add_run(row, "tn_compiled", r_tn);
    add_run(row, "tn_rebuild", r_rb);
    add_run(row, "tn_parallel", r_par);
    rows.push_back(std::move(row));
  }
  std::printf(
      "\nNotes: b = engine builds at plan time / during the timed replays\n"
      "(sim::program_compile_count or qtensor::network_build_count).\n"
      "At p=1 the TN lightcone is constant-size on regular graphs, so its\n"
      "cost stays flat while the statevector doubles per qubit; the\n"
      "tn-rebuild column pays one network build per edge per energy call.\n");

  json::Value section = json::Value::object();
  section.set("p", p);
  section.set("reps", reps);
  section.set("rows", std::move(rows));
  bench::update_bench_json(out, "sim_backend", std::move(section));
  return 0;
}
