// Figure 9: per-depth approximation ratios of the baseline vs qnas mixers
// on 10-node random 4-regular graphs for p = 1, 2, 3.
//
// Expected shape: the two mixers are comparable at every p, both ≈ 1.0
// (the paper shows individual per-p values because the aggregates tie).
#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "search/eval_service.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto cfg = bench::BenchConfig::from_cli(cli);
  bench::banner("Figure 9", "baseline vs qnas per depth on 4-regular graphs",
                cfg);

  const std::size_t num_graphs = cfg.graphs_or(/*quick=*/10, /*full=*/20);
  Rng rng(cfg.seed);
  const auto graphs = graph::regular_dataset(num_graphs, 10, 4, rng);

  SessionConfig session;
  session.backend = cfg.backend();
  session.training_evals = 200;
  session.workers = 0;  // all cores
  session.evaluator_cache = num_graphs;  // one shared evaluator per graph
  search::EvalService service(session);

  const std::vector<std::pair<std::string, qaoa::MixerSpec>> mixers = {
      {"baseline", qaoa::MixerSpec::baseline()},
      {"qnas", qaoa::MixerSpec::qnas()}};

  std::vector<std::pair<std::string, double>> bars;
  std::vector<std::vector<double>> csv_rows;
  std::printf("graphs=%zu\n\n", num_graphs);
  std::printf("%-4s %-10s %-10s %-10s\n", "p", "mixer", "mean r", "std r");
  for (std::size_t p = 1; p <= 3; ++p) {
    for (const auto& [name, mixer] : mixers) {
      std::vector<search::EvalTicket> tickets;
      for (const auto& g : graphs) tickets.push_back(service.submit(g, mixer, p));
      std::vector<double> ratios;
      for (const auto& r : service.collect(tickets))
        ratios.push_back(r.sampled_ratio);
      std::printf("%-4zu %-10s %-10.4f %-10.4f\n", p, name.c_str(),
                  mean(ratios), stddev(ratios));
      bars.emplace_back("p=" + std::to_string(p) + " " + name, mean(ratios));
      csv_rows.push_back({static_cast<double>(p), mean(ratios),
                          stddev(ratios)});
    }
  }

  std::printf("\n%s\n",
              ascii_barh("Fig 9: r by depth (4-regular graphs)", bars, 48,
                         0.9, 1.0)
                  .c_str());
  bench::maybe_csv(cfg.csv_path, {"p", "mean_r", "std_r"}, csv_rows);
  return 0;
}
