// Shared helpers for the figure-reproduction harnesses.
//
// Every fig*_ binary accepts:
//   --quick (default)  calibrated-down workload that keeps the figure's
//                      SHAPE while finishing in seconds..minutes
//   --full             the paper's full workload (|A_R|=5, k=1..4 → 780
//                      sequences per depth; 20 graphs; 5 runs)
//   --engine sv|tn     simulator engine (default sv; the paper used the
//                      tensor-network backend — see EXPERIMENTS.md)
//   --csv PATH         also dump the series to CSV
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "parallel/task_pool.hpp"
#include "qaoa/energy.hpp"
#include "search/combinations.hpp"
#include "search/engine.hpp"
#include "session.hpp"

namespace qarch::bench {

/// Standard workload knobs decoded from the CLI.
struct BenchConfig {
  bool full = false;
  qaoa::EngineKind engine = qaoa::EngineKind::Statevector;
  std::string csv_path;
  std::size_t combos = 0;   ///< candidate sequences per depth (0 = mode default)
  std::size_t graphs = 0;   ///< dataset size (0 = mode default)
  std::size_t runs = 0;     ///< repetitions (0 = mode default)
  std::uint64_t seed = 2023;

  static BenchConfig from_cli(const Cli& cli) {
    BenchConfig c;
    c.full = cli.has("full");
    if (cli.get("engine", "sv") == "tn")
      c.engine = qaoa::EngineKind::TensorNetwork;
    c.csv_path = cli.get("csv", "");
    c.combos = static_cast<std::size_t>(cli.get_int("combos", 0));
    c.graphs = static_cast<std::size_t>(cli.get_int("graphs", 0));
    c.runs = static_cast<std::size_t>(cli.get_int("runs", 0));
    c.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2023));
    return c;
  }

  [[nodiscard]] std::size_t combos_or(std::size_t quick,
                                      std::size_t full_value) const {
    if (combos != 0) return combos;
    return full ? full_value : quick;
  }
  [[nodiscard]] std::size_t graphs_or(std::size_t quick,
                                      std::size_t full_value) const {
    if (graphs != 0) return graphs;
    return full ? full_value : quick;
  }
  [[nodiscard]] std::size_t runs_or(std::size_t quick,
                                    std::size_t full_value) const {
    if (runs != 0) return runs;
    return full ? full_value : quick;
  }

  /// The --engine flag as a session-level BackendChoice (never Auto: the
  /// figure harnesses compare the two engines explicitly).
  [[nodiscard]] BackendChoice backend() const {
    return engine == qaoa::EngineKind::Statevector
               ? BackendChoice::Statevector
               : BackendChoice::TensorNetwork;
  }
};

/// A seeded subsample of the full candidate space (paper alphabet, k<=k_max).
/// count >= space size returns the whole space.
inline std::vector<qaoa::MixerSpec> candidate_subsample(
    const search::GateAlphabet& alphabet, std::size_t k_max, std::size_t count,
    std::uint64_t seed) {
  auto all = search::all_combinations(alphabet, k_max,
                                      search::CombinationMode::Product);
  if (count >= all.size()) return all;
  Rng rng(seed);
  rng.shuffle(all);
  all.resize(count);
  return all;
}

/// Times one full candidate sweep through search::Evaluator — serially or
/// fanned out over a TaskPool — under the two-level (outer candidate
/// workers x inner simulator threads) split and the compiled-path toggle the
/// fig4/fig5 scaling harnesses sweep. One definition so both figures always
/// measure the same configuration.
inline double timed_candidate_search(
    const graph::Graph& g, const std::vector<qaoa::MixerSpec>& candidates,
    std::size_t p, std::size_t outer_workers, std::size_t inner_workers,
    bool compiled, qaoa::EngineKind engine) {
  search::EvaluatorOptions opt;
  opt.energy.engine = engine;
  opt.energy.inner_workers = inner_workers;
  opt.energy.sv_compile_plan = compiled;
  opt.energy.sv_batch_expectations = compiled;
  // compiled=false means the PRE-compilation legacy path: scalar per-gate
  // kernels, matching abl_diagonal_gates' "generic" baseline.
  opt.energy.sv_plan.simd = compiled;
  opt.cobyla.max_evals = 200;
  const search::Evaluator evaluator(g, opt);

  Timer timer;
  if (outer_workers <= 1) {
    for (const auto& mixer : candidates) (void)evaluator.evaluate(mixer, p);
  } else {
    parallel::TaskPool pool(outer_workers);
    std::vector<std::tuple<std::size_t>> idx;
    for (std::size_t i = 0; i < candidates.size(); ++i) idx.emplace_back(i);
    pool.starmap_async(
            [&](std::size_t i) { return evaluator.evaluate(candidates[i], p); },
            idx)
        .get();
  }
  return timer.seconds();
}

/// Pretty banner for a figure harness.
inline void banner(const char* figure, const char* description,
                   const BenchConfig& cfg) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("mode=%s engine=%s seed=%llu\n", cfg.full ? "full" : "quick",
              cfg.engine == qaoa::EngineKind::Statevector ? "statevector"
                                                          : "tensor-network",
              static_cast<unsigned long long>(cfg.seed));
  std::printf("================================================================\n");
}

/// Read-modify-write merge of one named section into a JSON report file, so
/// several bench binaries can contribute to a single machine-readable
/// summary (e.g. abl_diagonal_gates and abl_fusion both feed
/// BENCH_sim_kernels.json). A malformed or missing file starts fresh.
inline void update_bench_json(const std::string& path,
                              const std::string& section, json::Value value) {
  json::Value root = json::Value::object();
  if (std::ifstream in(path); in) {
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!ss.str().empty()) {
      try {
        root = json::parse(ss.str());
      } catch (...) {
        root = json::Value::object();
      }
    }
  }
  if (root.type() != json::Value::Type::Object) root = json::Value::object();
  root.set(section, std::move(value));
  std::ofstream out(path);
  out << root.dump(2) << "\n";
  out.flush();
  if (!out) {
    std::printf("ERROR: failed to write json section \"%s\" to %s\n",
                section.c_str(), path.c_str());
    return;
  }
  std::printf("(json section \"%s\" written to %s)\n", section.c_str(),
              path.c_str());
}

/// Writes (x, series...) rows to CSV when a path was requested.
inline void maybe_csv(const std::string& path,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<double>>& rows) {
  if (path.empty()) return;
  CsvWriter w(path, header);
  for (const auto& r : rows) w.row(r);
  std::printf("(csv written to %s)\n", path.c_str());
}

}  // namespace qarch::bench
