// Figure 5: time to run the p=2 search for one graph as the worker count
// sweeps 8..64 in steps of 8, against the serial baseline (dashed line in
// the paper).
//
// Expected shape: parallel time is below the serial line everywhere and
// decreases with the worker count until it saturates (beyond the physical
// core count extra workers stop helping — our host has fewer than 64 cores,
// which the output records, mirroring the paper's flattening tail).
#include <thread>

#include "bench_util.hpp"
#include "parallel/task_pool.hpp"
#include "common/ascii_plot.hpp"
#include "common/timer.hpp"

using namespace qarch;

namespace {

double timed_search(const graph::Graph& g,
                    const std::vector<qaoa::MixerSpec>& candidates,
                    std::size_t p, std::size_t workers,
                    qaoa::EngineKind engine) {
  search::EvaluatorOptions opt;
  opt.energy.engine = engine;
  opt.cobyla.max_evals = 200;
  const search::Evaluator evaluator(g, opt);
  Timer timer;
  if (workers <= 1) {
    for (const auto& mixer : candidates) evaluator.evaluate(mixer, p);
  } else {
    parallel::TaskPool pool(workers);
    std::vector<std::tuple<std::size_t>> idx;
    for (std::size_t i = 0; i < candidates.size(); ++i) idx.emplace_back(i);
    pool.starmap_async(
            [&](std::size_t i) { return evaluator.evaluate(candidates[i], p); },
            idx)
        .get();
  }
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto cfg = bench::BenchConfig::from_cli(cli);
  bench::banner("Figure 5", "search time at p=2 vs available workers", cfg);

  const std::size_t combos = cfg.combos_or(/*quick=*/32, /*full=*/780);
  const std::size_t p = static_cast<std::size_t>(cli.get_int("p", 2));
  const auto candidates = bench::candidate_subsample(
      search::GateAlphabet::standard(), 4, combos, cfg.seed);

  Rng rng(cfg.seed);
  const graph::Graph g = graph::erdos_renyi_connected(10, 0.5, rng);
  std::printf("graph=%s candidates=%zu p=%zu physical cores=%u\n\n",
              g.to_string().c_str(), candidates.size(), p,
              std::thread::hardware_concurrency());

  const double serial = timed_search(g, candidates, p, 1, cfg.engine);
  std::printf("serial baseline: %.3fs (dashed line)\n\n", serial);
  std::printf("%-8s %-12s %-12s\n", "cores", "time (s)", "vs serial");

  Series parallel_series{"parallel", {}, {}};
  Series serial_series{"serial (baseline)", {}, {}};
  std::vector<std::vector<double>> csv_rows;
  for (std::size_t cores = 8; cores <= 64; cores += 8) {
    const double t = timed_search(g, candidates, p, cores, cfg.engine);
    std::printf("%-8zu %-12.3f %-12.2fx\n", cores, t, serial / t);
    parallel_series.x.push_back(static_cast<double>(cores));
    parallel_series.y.push_back(t);
    serial_series.x.push_back(static_cast<double>(cores));
    serial_series.y.push_back(serial);
    csv_rows.push_back({static_cast<double>(cores), t, serial});
  }

  AsciiPlot plot("Fig 5: time to simulate vs cores (p=2)", "cores", "seconds");
  plot.add(parallel_series);
  plot.add(serial_series);
  std::printf("\n%s\n", plot.render().c_str());
  bench::maybe_csv(cfg.csv_path, {"cores", "parallel_s", "serial_s"},
                   csv_rows);
  return 0;
}
