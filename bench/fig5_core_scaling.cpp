// Figure 5: time to run the p=2 search for one graph as the worker count
// sweeps 8..64 in steps of 8, against the serial baseline (dashed line in
// the paper).
//
// Expected shape: parallel time is below the serial line everywhere and
// decreases with the worker count until it saturates (beyond the physical
// core count extra workers stop helping — our host has fewer than 64 cores,
// which the output records, mirroring the paper's flattening tail).
//
// Both the legacy per-gate path and the compiled-plan path are timed at
// every sweep point, and the compiled run splits each budget two-level as
// (cores / inner) candidate workers x --inner simulator threads, exercising
// inner_workers > 1 on the compiled kernels.
//
// Flags: bench_util standards plus --p (2) --inner (2)
#include <thread>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto cfg = bench::BenchConfig::from_cli(cli);
  bench::banner("Figure 5", "search time at p=2 vs available workers", cfg);

  const std::size_t combos = cfg.combos_or(/*quick=*/32, /*full=*/780);
  const std::size_t p = static_cast<std::size_t>(cli.get_int("p", 2));
  const std::size_t inner =
      std::max<std::size_t>(1, static_cast<std::size_t>(cli.get_int("inner", 2)));
  const auto candidates = bench::candidate_subsample(
      search::GateAlphabet::standard(), 4, combos, cfg.seed);

  Rng rng(cfg.seed);
  const graph::Graph g = graph::erdos_renyi_connected(10, 0.5, rng);
  std::printf("graph=%s candidates=%zu p=%zu physical cores=%u inner=%zu\n\n",
              g.to_string().c_str(), candidates.size(), p,
              std::thread::hardware_concurrency(), inner);

  const double serial_pergate =
      bench::timed_candidate_search(g, candidates, p, 1, 1, /*compiled=*/false, cfg.engine);
  const double serial_compiled =
      bench::timed_candidate_search(g, candidates, p, 1, 1, /*compiled=*/true, cfg.engine);
  std::printf("serial baselines: per-gate %.3fs, compiled %.3fs "
              "(dashed lines)\n\n",
              serial_pergate, serial_compiled);
  std::printf("%-8s %-14s %-20s %-12s\n", "cores", "per-gate (s)",
              "compiled 2-level (s)", "vs serial");

  Series pergate_series{"per-gate parallel", {}, {}};
  Series compiled_series{"compiled two-level", {}, {}};
  Series serial_series{"serial compiled (baseline)", {}, {}};
  std::vector<std::vector<double>> csv_rows;
  for (std::size_t cores = 8; cores <= 64; cores += 8) {
    const double t_pergate =
        bench::timed_candidate_search(g, candidates, p, cores, 1, /*compiled=*/false,
                     cfg.engine);
    // Same core budget split two-level: candidates x simulator threads.
    const double t_compiled =
        bench::timed_candidate_search(g, candidates, p, std::max<std::size_t>(1, cores / inner),
                     inner, /*compiled=*/true, cfg.engine);
    std::printf("%-8zu %-14.3f %-20.3f %-12.2fx\n", cores, t_pergate,
                t_compiled, serial_compiled / t_compiled);
    pergate_series.x.push_back(static_cast<double>(cores));
    pergate_series.y.push_back(t_pergate);
    compiled_series.x.push_back(static_cast<double>(cores));
    compiled_series.y.push_back(t_compiled);
    serial_series.x.push_back(static_cast<double>(cores));
    serial_series.y.push_back(serial_compiled);
    csv_rows.push_back(
        {static_cast<double>(cores), t_pergate, t_compiled, serial_compiled});
  }

  AsciiPlot plot("Fig 5: time to simulate vs cores (p=2)", "cores", "seconds");
  plot.add(pergate_series);
  plot.add(compiled_series);
  plot.add(serial_series);
  std::printf("\n%s\n", plot.render().c_str());
  bench::maybe_csv(cfg.csv_path,
                   {"cores", "pergate_parallel_s", "compiled_twolevel_s",
                    "serial_compiled_s"},
                   csv_rows);
  return 0;
}
