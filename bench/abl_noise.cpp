// Ablation: discovered vs baseline mixer under NISQ-style noise.
//
// The paper's motivation is the NISQ setting; a mixer that wins noiselessly
// should hold its edge under depolarizing-style gate errors (its RX·RY tower
// adds only single-qubit gates, which carry the lower error rate). Trains
// both mixers noiselessly, then rescoring the trained circuits across noise
// strengths with trajectory averaging.
#include <cstdio>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "optim/cobyla.hpp"
#include "parallel/task_pool.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/train.hpp"
#include "sim/noise.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto num_graphs = static_cast<std::size_t>(cli.get_int("graphs", 5));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 1));
  const auto trajectories =
      static_cast<std::size_t>(cli.get_int("trajectories", 64));

  Rng rng(29);
  const auto graphs = graph::regular_dataset(num_graphs, 10, 4, rng);

  const std::vector<std::pair<std::string, qaoa::MixerSpec>> mixers = {
      {"baseline", qaoa::MixerSpec::baseline()},
      {"qnas", qaoa::MixerSpec::qnas()}};
  const double noise_levels[] = {0.0, 0.001, 0.005, 0.02};

  std::printf("noise ablation: %zu graphs, p=%zu, %zu trajectories\n",
              num_graphs, p, trajectories);
  std::printf("(two-qubit error rate = 5x the listed single-qubit rate)\n\n");
  std::printf("%-10s %-10s %-12s\n", "p1 rate", "mixer", "mean r");

  parallel::TaskPool pool;
  for (const double p1 : noise_levels) {
    for (const auto& [name, mixer] : mixers) {
      std::vector<std::tuple<std::size_t>> idx;
      for (std::size_t i = 0; i < graphs.size(); ++i) idx.emplace_back(i);
      const auto ratios = pool.starmap_async(
          [&, &mixer = mixer](std::size_t i) {
            const auto& g = graphs[i];
            const auto ansatz = qaoa::build_qaoa_circuit(g, p, mixer);
            const qaoa::EnergyEvaluator ev(g, {});
            optim::CobylaConfig cc;
            cc.max_evals = 200;
            const auto trained = qaoa::train_qaoa(ansatz, ev, optim::Cobyla(cc));
            sim::NoiseModel noise;
            noise.p1 = p1;
            noise.p2 = 5.0 * p1;
            Rng nrng(1000 + i);
            const double noisy = sim::noisy_cut_expectation(
                ansatz, trained.theta, g, noise, trajectories, nrng);
            return noisy / graph::maxcut_exact(g).value;
          },
          idx).get();
      std::printf("%-10.3f %-10s %-12.4f\n", p1, name.c_str(), mean(ratios));
    }
  }
  return 0;
}
