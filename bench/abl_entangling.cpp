// Ablation: single-qubit vs entangling-extended mixer alphabets.
//
// The paper restricts its alphabet to single-qubit rotations and lists
// richer circuit spaces as future work. This bench searches both alphabets
// under the same budget and compares the best trained energy ratio —
// quantifying what ring entanglers (CZ / RZZ) in the mixer buy at p=1.
#include <cstdio>
#include <thread>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "search/constraints.hpp"
#include "search/engine.hpp"

using namespace qarch;

namespace {

double best_ratio_over(const std::vector<graph::Graph>& graphs,
                       const search::GateAlphabet& alphabet,
                       std::size_t k_max) {
  search::SearchConfig cfg;
  cfg.p_max = 1;
  cfg.alphabet = alphabet;
  cfg.session.workers = std::thread::hardware_concurrency();
  cfg.session.backend = BackendChoice::Statevector;
  cfg.session.training_evals = 150;
  cfg.constraints.add(std::make_shared<search::TrainableConstraint>());
  const search::SearchEngine engine(cfg);

  std::vector<double> best;
  for (const auto& g : graphs)
    best.push_back(engine.run_exhaustive(g, k_max).best.ratio);
  return mean(best);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto num_graphs = static_cast<std::size_t>(cli.get_int("graphs", 4));
  const auto k_max = static_cast<std::size_t>(cli.get_int("kmax", 2));

  Rng rng(53);
  const auto graphs = graph::regular_dataset(num_graphs, 10, 4, rng);
  std::printf("entangling-alphabet ablation: %zu graphs, k<=%zu, p=1\n\n",
              num_graphs, k_max);

  using circuit::GateKind;
  const search::GateAlphabet paper = search::GateAlphabet::standard();
  const search::GateAlphabet extended{{GateKind::RX, GateKind::RY,
                                       GateKind::RZ, GateKind::H, GateKind::P,
                                       GateKind::CZ, GateKind::RZZ}};

  const double r_paper = best_ratio_over(graphs, paper, k_max);
  std::printf("%-22s best mean r = %.4f  (|A|=%zu)\n", "single-qubit (paper)",
              r_paper, paper.size());
  const double r_ext = best_ratio_over(graphs, extended, k_max);
  std::printf("%-22s best mean r = %.4f  (|A|=%zu)\n", "with ring entanglers",
              r_ext, extended.size());
  std::printf("\ndelta: %+.4f (positive = entangling mixers helped at p=1)\n",
              r_ext - r_paper);
  return 0;
}
