// Ablation: the compiled query subsystem (src/query).
//
// Two comparisons on one QAOA ansatz:
//
//   1. AMPLITUDES — a query::AmplitudeProgram compiled once and replayed per
//      (theta, bits) vs the legacy one-shot path (QTensorSimulator with
//      compile_programs=false: network rebuilt and order re-planned every
//      amplitude call). The replay also proves the plan-cache contract: the
//      second program built on the same shape compiles with ZERO planner
//      invocations.
//   2. SAMPLING — query::Sampler on both engines drawing the same seeded
//      shot stream: direct tensor-network sampling (qubit-by-qubit marginal
//      contraction, never materializing the state) vs the statevector
//      engine (materialize |psi| once, then inverse-CDF draws).
//
// Results append to BENCH_query.json (sections "amplitude" and "sampling").
//
// Flags: --qubits N (12) --degree D (3) --p P (2) --amps A (64)
//        --shots S (256) --out PATH
#include <algorithm>
#include <complex>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "circuit/optimizer.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/hamiltonian.hpp"
#include "qtensor/backend.hpp"
#include "qtensor/contraction.hpp"
#include "qtensor/plan_cache.hpp"
#include "qtensor/planner.hpp"
#include "query/program.hpp"
#include "query/sampler.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("qubits", 12));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 3));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 2));
  const auto amps = static_cast<std::size_t>(cli.get_int("amps", 64));
  const auto shots = static_cast<std::size_t>(cli.get_int("shots", 256));
  const std::string out = cli.get("out", "BENCH_query.json");

  Rng rng(7);
  const auto g = graph::random_regular(n, degree, rng);
  auto ansatz = qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::qnas());
  ansatz = circuit::optimize(ansatz);
  std::vector<double> theta(ansatz.num_params());
  for (double& t : theta) t = rng.uniform(-1.5, 1.5);

  std::printf("query ablation: %zu qubits, %zu-regular, p=%zu\n\n", n, degree,
              p);

  // -- 1. amplitudes: compiled replay vs the legacy one-shot path -----------
  std::vector<std::vector<int>> queries(amps, std::vector<int>(n));
  for (auto& bits : queries)
    for (int& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;

  query::QueryOptions options;
  options.plan_cache = std::make_shared<qtensor::PlanCache>();
  const qtensor::SerialCpuBackend backend;

  Timer t_compile;
  const query::AmplitudeProgram program(ansatz, options);
  const double compile_ms = t_compile.millis();

  Timer t_replay;
  qtensor::cplx checksum{0.0, 0.0};
  for (const auto& bits : queries)
    checksum += program.amplitude(theta, bits, backend);
  const double replay_ms = t_replay.millis();

  qtensor::QTensorOptions legacy_opts;
  legacy_opts.compile_programs = false;  // rebuild + re-plan every call
  const qtensor::QTensorSimulator legacy(legacy_opts);
  Timer t_legacy;
  qtensor::cplx legacy_checksum{0.0, 0.0};
  for (const auto& bits : queries)
    legacy_checksum += legacy.amplitude(ansatz, theta, bits);
  const double legacy_ms = t_legacy.millis();

  // Warm plan cache: the same shape compiles without touching the planner.
  qtensor::reset_planner_invocation_count();
  Timer t_warm;
  const query::AmplitudeProgram warm(ansatz, options);
  const double warm_compile_ms = t_warm.millis();
  const auto warm_plans = qtensor::planner_invocation_count();

  std::printf("%zu amplitudes: compiled %.1f ms (+%.1f ms compile) vs "
              "one-shot %.1f ms -> %.2fx per call\n",
              amps, replay_ms, compile_ms, legacy_ms, legacy_ms / replay_ms);
  std::printf("warm recompile: %.1f ms, %llu planner invocation(s) "
              "(checksum drift %.2e)\n\n",
              warm_compile_ms, static_cast<unsigned long long>(warm_plans),
              std::abs(checksum - legacy_checksum));

  json::Value amp_section = json::Value::object();
  amp_section.set("qubits", n);
  amp_section.set("p", p);
  amp_section.set("amplitudes", amps);
  amp_section.set("compile_ms", compile_ms);
  amp_section.set("compiled_replay_ms", replay_ms);
  amp_section.set("one_shot_ms", legacy_ms);
  amp_section.set("per_call_speedup", legacy_ms / replay_ms);
  amp_section.set("warm_compile_ms", warm_compile_ms);
  amp_section.set("warm_planner_invocations",
                  static_cast<std::size_t>(warm_plans));
  amp_section.set("plan_width", program.stats().width);
  bench::update_bench_json(out, "amplitude", std::move(amp_section));

  // -- 2. sampling: direct tensor-network draws vs the statevector engine ---
  query::SamplerOptions tn_opts;
  tn_opts.engine = query::SamplerEngine::TensorNetwork;
  tn_opts.query = options;  // share the warmed plan cache
  Timer t_tn_compile;
  const query::Sampler tn_sampler(ansatz, tn_opts);
  const double tn_compile_ms = t_tn_compile.millis();

  query::SamplerOptions sv_opts;  // statevector engine default
  const query::Sampler sv_sampler(ansatz, sv_opts);

  Rng tn_rng(99), sv_rng(99);
  Timer t_tn_draw;
  const auto tn_samples = tn_sampler.sample(theta, shots, tn_rng);
  const double tn_draw_ms = t_tn_draw.millis();
  Timer t_sv_draw;
  const auto sv_samples = sv_sampler.sample(theta, shots, sv_rng);
  const double sv_draw_ms = t_sv_draw.millis();

  // Same seed, same inverse-CDF walk: count the (float-boundary) disagreements.
  std::size_t agreements = 0;
  for (std::size_t i = 0; i < shots; ++i)
    if (tn_samples[i] == sv_samples[i]) ++agreements;

  const qaoa::Hamiltonian ham(g);
  double tn_best = 0.0, sv_best = 0.0;
  for (const auto s : tn_samples)
    tn_best = std::max(tn_best, ham.classical_value_bits(s));
  for (const auto s : sv_samples)
    sv_best = std::max(sv_best, ham.classical_value_bits(s));

  std::printf("%zu shots: tensor-network %.1f ms (+%.1f ms compile) vs "
              "statevector %.1f ms; %zu/%zu identical draws\n",
              shots, tn_draw_ms, tn_compile_ms, sv_draw_ms, agreements,
              shots);
  std::printf("best sampled cut: tn %.3f | sv %.3f (max-cut statistic)\n",
              tn_best, sv_best);

  json::Value sample_section = json::Value::object();
  sample_section.set("qubits", n);
  sample_section.set("p", p);
  sample_section.set("shots", shots);
  sample_section.set("tn_compile_ms", tn_compile_ms);
  sample_section.set("tn_draw_ms", tn_draw_ms);
  sample_section.set("sv_draw_ms", sv_draw_ms);
  sample_section.set("identical_draws", agreements);
  sample_section.set("tn_best_cut", tn_best);
  sample_section.set("sv_best_cut", sv_best);
  bench::update_bench_json(out, "sampling", std::move(sample_section));
  return 0;
}
