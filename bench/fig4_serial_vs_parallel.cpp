// Figure 4: time to run the mixer search serially vs in parallel as the
// QAOA depth p grows from 1 to 4.
//
// Paper setup: 10-node Erdős–Rényi graphs of varying connectivity, the
// 5-gate rotation alphabet, gate sequences of length k = 1..4, each
// candidate trained 200 COBYLA steps; results averaged over 5 runs. The
// parallel search fans candidates out with starmap_async-style workers.
// Expected shape: serial time grows superlinearly with p; parallel cuts it
// by well over 50% at the larger depths.
#include <thread>

#include "bench_util.hpp"
#include "parallel/task_pool.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"

using namespace qarch;

namespace {

double run_search(const graph::Graph& g,
                  const std::vector<qaoa::MixerSpec>& candidates,
                  std::size_t p, std::size_t workers,
                  qaoa::EngineKind engine) {
  search::EvaluatorOptions opt;
  opt.energy.engine = engine;
  opt.cobyla.max_evals = 200;
  const search::Evaluator evaluator(g, opt);

  Timer timer;
  if (workers <= 1) {
    for (const auto& mixer : candidates) evaluator.evaluate(mixer, p);
  } else {
    parallel::TaskPool pool(workers);
    std::vector<std::tuple<std::size_t>> idx;
    for (std::size_t i = 0; i < candidates.size(); ++i) idx.emplace_back(i);
    pool.starmap_async(
            [&](std::size_t i) { return evaluator.evaluate(candidates[i], p); },
            idx)
        .get();
  }
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto cfg = bench::BenchConfig::from_cli(cli);
  bench::banner("Figure 4", "serial vs parallel search time vs depth p", cfg);

  const std::size_t combos = cfg.combos_or(/*quick=*/16, /*full=*/780);
  const std::size_t runs = cfg.runs_or(/*quick=*/2, /*full=*/5);
  const std::size_t p_max = static_cast<std::size_t>(cli.get_int("pmax", 4));
  const std::size_t workers = std::thread::hardware_concurrency();

  const auto candidates = bench::candidate_subsample(
      search::GateAlphabet::standard(), 4, combos, cfg.seed);
  std::printf("candidates/depth=%zu runs=%zu workers(parallel)=%zu\n\n",
              candidates.size(), runs, workers);

  Rng rng(cfg.seed);
  std::vector<std::vector<double>> csv_rows;
  Series serial_series{"serial", {}, {}};
  Series parallel_series{"parallel", {}, {}};

  std::printf("%-4s %-14s %-14s %-10s\n", "p", "serial (s)", "parallel (s)",
              "speedup");
  for (std::size_t p = 1; p <= p_max; ++p) {
    std::vector<double> serial_times, parallel_times;
    for (std::size_t run = 0; run < runs; ++run) {
      const graph::Graph g = graph::erdos_renyi_connected(
          10, rng.uniform(0.3, 0.7), rng);
      serial_times.push_back(run_search(g, candidates, p, 1, cfg.engine));
      parallel_times.push_back(
          run_search(g, candidates, p, workers, cfg.engine));
    }
    const double s = mean(serial_times), q = mean(parallel_times);
    std::printf("%-4zu %-14.3f %-14.3f %-10.2fx\n", p, s, q, s / q);
    serial_series.x.push_back(static_cast<double>(p));
    serial_series.y.push_back(s);
    parallel_series.x.push_back(static_cast<double>(p));
    parallel_series.y.push_back(q);
    csv_rows.push_back({static_cast<double>(p), s, q});
  }

  AsciiPlot plot("Fig 4: time to simulate vs p", "p", "seconds");
  plot.add(serial_series);
  plot.add(parallel_series);
  std::printf("\n%s\n", plot.render().c_str());
  bench::maybe_csv(cfg.csv_path, {"p", "serial_s", "parallel_s"}, csv_rows);
  return 0;
}
