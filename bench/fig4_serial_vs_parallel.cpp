// Figure 4: time to run the mixer search serially vs in parallel as the
// QAOA depth p grows from 1 to 4.
//
// Paper setup: 10-node Erdős–Rényi graphs of varying connectivity, the
// 5-gate rotation alphabet, gate sequences of length k = 1..4, each
// candidate trained 200 COBYLA steps; results averaged over 5 runs. The
// parallel search fans candidates out with starmap_async-style workers.
// Expected shape: serial time grows superlinearly with p; parallel cuts it
// by well over 50% at the larger depths.
//
// Every configuration now exercises the COMPILED statevector path (plan
// compiled once per candidate, reused across all optimizer steps) alongside
// the legacy per-gate path, and the parallel row runs the two-level scheme
// with --inner simulator threads per candidate (inner_workers > 1).
//
// Flags: bench_util standards plus --pmax (4) --inner (2)
#include <thread>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto cfg = bench::BenchConfig::from_cli(cli);
  bench::banner("Figure 4", "serial vs parallel search time vs depth p", cfg);

  const std::size_t combos = cfg.combos_or(/*quick=*/16, /*full=*/780);
  const std::size_t runs = cfg.runs_or(/*quick=*/2, /*full=*/5);
  const std::size_t p_max = static_cast<std::size_t>(cli.get_int("pmax", 4));
  const std::size_t inner =
      std::max<std::size_t>(1, static_cast<std::size_t>(cli.get_int("inner", 2)));
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  const std::size_t outer = std::max<std::size_t>(1, hw / inner);

  const auto candidates = bench::candidate_subsample(
      search::GateAlphabet::standard(), 4, combos, cfg.seed);
  std::printf("candidates/depth=%zu runs=%zu parallel=%zux%zu "
              "(outer x inner)\n\n",
              candidates.size(), runs, outer, inner);

  Rng rng(cfg.seed);
  std::vector<std::vector<double>> csv_rows;
  Series serial_pergate_series{"serial per-gate", {}, {}};
  Series serial_compiled_series{"serial compiled", {}, {}};
  Series parallel_series{"parallel compiled", {}, {}};

  std::printf("%-4s %-16s %-16s %-18s %-10s\n", "p", "serial/pergate",
              "serial/compiled", "parallel/compiled", "speedup");
  for (std::size_t p = 1; p <= p_max; ++p) {
    std::vector<double> pergate_times, compiled_times, parallel_times;
    for (std::size_t run = 0; run < runs; ++run) {
      const graph::Graph g = graph::erdos_renyi_connected(
          10, rng.uniform(0.3, 0.7), rng);
      pergate_times.push_back(
          bench::timed_candidate_search(g, candidates, p, 1, 1, /*compiled=*/false, cfg.engine));
      compiled_times.push_back(
          bench::timed_candidate_search(g, candidates, p, 1, 1, /*compiled=*/true, cfg.engine));
      // Two-level: outer candidate workers x inner simulator threads.
      parallel_times.push_back(bench::timed_candidate_search(g, candidates, p, outer, inner,
                                          /*compiled=*/true, cfg.engine));
    }
    const double sp = mean(pergate_times), sc = mean(compiled_times),
                 q = mean(parallel_times);
    std::printf("%-4zu %-16.3f %-16.3f %-18.3f %-10.2fx\n", p, sp, sc, q,
                sp / q);
    serial_pergate_series.x.push_back(static_cast<double>(p));
    serial_pergate_series.y.push_back(sp);
    serial_compiled_series.x.push_back(static_cast<double>(p));
    serial_compiled_series.y.push_back(sc);
    parallel_series.x.push_back(static_cast<double>(p));
    parallel_series.y.push_back(q);
    csv_rows.push_back({static_cast<double>(p), sp, sc, q});
  }

  AsciiPlot plot("Fig 4: time to simulate vs p", "p", "seconds");
  plot.add(serial_pergate_series);
  plot.add(serial_compiled_series);
  plot.add(parallel_series);
  std::printf("\n%s\n", plot.render().c_str());
  bench::maybe_csv(cfg.csv_path,
                   {"p", "serial_pergate_s", "serial_compiled_s",
                    "parallel_compiled_s"},
                   csv_rows);
  return 0;
}
